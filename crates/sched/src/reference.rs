//! Reference skyline scheduler — the pre-optimization Algorithm 4.
//!
//! This is the original, clone-heavy implementation of
//! [`crate::skyline::SkylineScheduler`], retained verbatim (minus
//! observability instrumentation) as the behavioural baseline for the
//! incremental scheduler (DESIGN §5f):
//!
//! * the golden equivalence tests in `skyline.rs` run it side-by-side
//!   with the optimized scheduler and assert byte-identical skylines;
//! * `bench_sched` (crate `flowtune-bench`, feature `reference`) times
//!   both in the same process and records the speedup in
//!   `BENCH_sched.json`.
//!
//! It recomputes `money_quanta` from the container spans inside every
//! sort comparator, re-collects and re-sorts all assignments on every
//! idle tie-break, and deep-clones the entire partial schedule
//! (assignments plus per-op vectors) for every (partial × candidate
//! container) expansion — exactly the costs the optimized scheduler
//! eliminates. Do not "improve" this module: its value is that it stays
//! the simple, obviously-correct formulation of the search.
//!
//! The only delta from the historical code is the `max_skyline == 1`
//! width-cap fix (the even-spread index formula divided by
//! `max_skyline - 1`), applied identically in both implementations so
//! the equivalence suite can cover that configuration.

use flowtune_common::{ContainerId, OpId, SimDuration, SimTime};
use flowtune_dataflow::Dag;

use crate::schedule::{Assignment, Schedule};
use crate::skyline::{OptionalOp, SchedulerConfig};

/// The reference (pre-optimization) skyline scheduler.
#[derive(Debug, Clone, Default)]
pub struct ReferenceSkylineScheduler {
    /// Configuration (shared with the optimized scheduler).
    pub config: SchedulerConfig,
}

#[derive(Debug, Clone)]
struct Partial {
    assignments: Vec<Assignment>,
    /// Next free time per used container.
    container_free: Vec<SimTime>,
    /// Span of *dataflow* ops per container (billing basis).
    container_span: Vec<(SimTime, SimTime)>,
    /// Next free time per container counting optional (build) tail ops.
    opt_free: Vec<SimTime>,
    /// End time of each dataflow op assigned so far (ZERO = unassigned).
    op_end: Vec<SimTime>,
    /// Container of each dataflow op.
    op_container: Vec<u32>,
    makespan: SimDuration,
    optional_count: usize,
    /// Order-sensitive hash of the dataflow assignments; equal hashes =>
    /// identical dataflow skeletons (optional ops excluded).
    skeleton: u64,
}

impl Partial {
    fn new(n_ops: usize) -> Self {
        Partial {
            assignments: Vec::new(),
            container_free: Vec::new(),
            container_span: Vec::new(),
            opt_free: Vec::new(),
            op_end: vec![SimTime::ZERO; n_ops],
            op_container: vec![u32::MAX; n_ops],
            makespan: SimDuration::ZERO,
            optional_count: 0,
            skeleton: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn money_quanta(&self, quantum: SimDuration) -> u64 {
        // `e >= s` (not `>`): a container whose only ops are
        // zero-duration has span (s, s) but is still leased and billed
        // one quantum. The unused-container sentinel (MAX, ZERO) stays
        // excluded.
        self.container_span
            .iter()
            .filter(|(s, e)| e >= s)
            .map(|(s, e)| {
                let lease_start = s.quantum_floor(quantum);
                let lease_end = e.quantum_ceil(quantum).max(lease_start + quantum);
                (lease_end - lease_start).as_millis() / quantum.as_millis()
            })
            .sum()
    }

    /// Longest single idle gap across containers (tie-break criterion).
    fn longest_sequential_idle(&self, quantum: SimDuration) -> SimDuration {
        let mut best = SimDuration::ZERO;
        for (c, &(s, e)) in self.container_span.iter().enumerate() {
            if e <= s {
                continue;
            }
            let lease_start = s.quantum_floor(quantum);
            let lease_end = e.quantum_ceil(quantum).max(lease_start + quantum);
            // Dataflow assignments only: optional build ops are
            // preemptible filler and must not perturb the tie-break.
            let mut ops: Vec<(SimTime, SimTime)> = self
                .assignments
                .iter()
                .filter(|a| a.container.index() == c && a.build.is_none())
                .map(|a| (a.start, a.end))
                .collect();
            ops.sort_unstable();
            let mut cursor = lease_start;
            for (os, oe) in ops {
                if os > cursor {
                    best = best.max(os - cursor);
                }
                cursor = cursor.max(oe);
            }
            if lease_end > cursor {
                best = best.max(lease_end - cursor);
            }
        }
        best
    }
}

impl ReferenceSkylineScheduler {
    /// Create a reference scheduler with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        ReferenceSkylineScheduler { config }
    }

    /// Schedule a dataflow, returning the skyline of non-dominated
    /// schedules sorted by ascending execution time.
    pub fn schedule(&self, dag: &Dag) -> Vec<Schedule> {
        self.schedule_with_optional(dag, &[])
    }

    /// Schedule a dataflow while opportunistically placing optional
    /// build operators (the online interleaving algorithm of §5.3.2).
    pub fn schedule_with_optional(&self, dag: &Dag, optional: &[OptionalOp]) -> Vec<Schedule> {
        if dag.is_empty() {
            return vec![Schedule::new()];
        }
        let order = dag.topo_order();
        let n = order.len();
        let mut skyline = vec![Partial::new(dag.len())];
        // Offer optional ops evenly across the assignment steps.
        let mut next_opt = 0usize;
        for (step, &op) in order.iter().enumerate() {
            // Expand every partial with every candidate container.
            let mut expanded: Vec<Partial> = Vec::new();
            for p in &skyline {
                let used = p.container_free.len();
                let candidates = if (used as u32) < self.config.max_containers {
                    used + 1
                } else {
                    used
                };
                for c in 0..candidates {
                    expanded.push(self.assign_dataflow_op(p, dag, op, c));
                }
            }
            skyline = self.reduce(expanded);
            // Offer a proportional share of the optional queue.
            let opt_until = optional.len() * (step + 1) / n;
            while next_opt < opt_until {
                skyline = self.offer_optional(skyline, &optional[next_opt]);
                next_opt += 1;
            }
        }
        while next_opt < optional.len() {
            skyline = self.offer_optional(skyline, &optional[next_opt]);
            next_opt += 1;
        }
        let quantum = self.config.quantum;
        skyline.sort_by_key(|p| (p.makespan, p.money_quanta(quantum)));
        skyline
            .into_iter()
            .map(|p| Schedule::from_assignments(p.assignments))
            .collect()
    }

    fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.config.network_bandwidth)
    }

    fn assign_dataflow_op(&self, p: &Partial, dag: &Dag, op: OpId, c: usize) -> Partial {
        let mut q = p.clone();
        if c == q.container_free.len() {
            q.container_free.push(SimTime::ZERO);
            q.container_span.push((SimTime::MAX, SimTime::ZERO));
            q.opt_free.push(SimTime::ZERO);
        }
        // Data-ready: every predecessor done, plus transfer when remote.
        let mut ready = SimTime::ZERO;
        for &pred in dag.preds(op) {
            let mut t = q.op_end[pred.index()];
            if q.op_container[pred.index()] != c as u32 {
                t += self.transfer_time(dag.edge_bytes(pred, op));
            }
            ready = ready.max(t);
        }
        // Dataflow ops see only other dataflow ops: an optional build op
        // occupying the container is preempted, so it never delays the
        // dataflow.
        let start = ready.max(q.container_free[c]);
        let end = start + dag.op(op).runtime;
        // Preempt optional tail ops that would overlap.
        q.assignments
            .retain(|a| !(a.build.is_some() && a.container.index() == c && a.end > start));
        q.optional_count = q.assignments.iter().filter(|a| a.build.is_some()).count();
        q.assignments.push(Assignment {
            op,
            container: ContainerId(c as u32),
            start,
            end,
            build: None,
        });
        q.container_free[c] = end;
        q.opt_free[c] = q.opt_free[c].max(end);
        let (s, e) = q.container_span[c];
        q.container_span[c] = (s.min(start), e.max(end));
        q.op_end[op.index()] = end;
        q.op_container[op.index()] = c as u32;
        q.makespan = q.makespan.max(end - SimTime::ZERO);
        for word in [op.0 as u64, c as u64, start.as_millis()] {
            q.skeleton ^= word;
            q.skeleton = q.skeleton.wrapping_mul(0x1000_0000_01b3);
        }
        q
    }

    /// Union each partial with versions that place `opt` on some
    /// container's free tail inside the current leased span.
    fn offer_optional(&self, skyline: Vec<Partial>, opt: &OptionalOp) -> Vec<Partial> {
        let quantum = self.config.quantum;
        let mut out = Vec::with_capacity(skyline.len() * 2);
        for p in &skyline {
            for c in 0..p.container_free.len() {
                let (s, e) = p.container_span[c];
                if e <= s {
                    continue;
                }
                let lease_start = s.quantum_floor(quantum);
                let lease_end = e.quantum_ceil(quantum).max(lease_start + quantum);
                let start = p.opt_free[c].max(p.container_free[c]);
                let end = start + opt.duration;
                if end <= lease_end {
                    let mut q = p.clone();
                    q.assignments.push(Assignment {
                        op: opt.op,
                        container: ContainerId(c as u32),
                        start,
                        end,
                        build: Some(opt.build),
                    });
                    q.opt_free[c] = end;
                    q.optional_count += 1;
                    out.push(q);
                }
            }
        }
        out.extend(skyline);
        self.reduce(out)
    }

    /// Skyline reduction: collapse equal (time, money) groups with the
    /// tie-break (more operators, then most sequential idle), drop
    /// dominated partials, cap the width.
    fn reduce(&self, mut partials: Vec<Partial>) -> Vec<Partial> {
        let quantum = self.config.quantum;
        partials.sort_by_key(|p| (p.makespan, p.money_quanta(quantum)));
        // Collapse ties.
        let mut collapsed: Vec<Partial> = Vec::new();
        for p in partials {
            match collapsed.last_mut() {
                Some(last)
                    if last.makespan == p.makespan
                        && last.money_quanta(quantum) == p.money_quanta(quantum) =>
                {
                    // Primary tie-break: most sequential idle over the
                    // dataflow skeleton. Only between skeleton-equivalent
                    // candidates does the optional-operator count decide.
                    let p_idle = p.longest_sequential_idle(quantum);
                    let last_idle = last.longest_sequential_idle(quantum);
                    let better = match p_idle.cmp(&last_idle) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Less => false,
                        std::cmp::Ordering::Equal => {
                            p.skeleton == last.skeleton && p.optional_count > last.optional_count
                        }
                    };
                    if better {
                        *last = p;
                    }
                }
                _ => collapsed.push(p),
            }
        }
        // Drop dominated: sorted by time asc, keep strictly decreasing money.
        let mut front: Vec<Partial> = Vec::new();
        let mut best_money = u64::MAX;
        for p in collapsed {
            let m = p.money_quanta(quantum);
            if m < best_money {
                best_money = m;
                front.push(p);
            }
        }
        // Cap width, keeping extremes and an even spread. A cap of one
        // keeps the fastest schedule (the historical even-spread index
        // formula divided by `max_skyline - 1`).
        if front.len() > self.config.max_skyline {
            if self.config.max_skyline <= 1 {
                front.truncate(self.config.max_skyline);
                return front;
            }
            let n = front.len();
            let keep: Vec<usize> = (0..self.config.max_skyline)
                .map(|i| i * (n - 1) / (self.config.max_skyline - 1))
                .collect();
            let mut kept = Vec::with_capacity(self.config.max_skyline);
            let mut front_iter = front.into_iter().enumerate();
            let mut keep_iter = keep.into_iter().peekable();
            for (i, p) in front_iter.by_ref() {
                if keep_iter.peek() == Some(&i) {
                    kept.push(p);
                    keep_iter.next();
                }
            }
            front = kept;
        }
        front
    }
}
