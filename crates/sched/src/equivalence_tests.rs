//! Golden equivalence suite: the optimized incremental skyline
//! scheduler must produce **byte-identical** skylines to the retained
//! pre-optimization implementation ([`crate::reference`]) — same
//! schedules, same assignment order within each schedule, same front
//! order — for every `App` workload, with and without optional build
//! operators, across sizes and skyline widths (DESIGN §5f).
//!
//! Any behavioural drift in the cached-objective/delta-expansion rework
//! shows up here as a precise schedule diff, not as a downstream
//! simulation anomaly.

// Redundant with the `#[cfg(test)]` on the module declaration, but
// carries the gate in-file where flowtune-analyze's per-file scan
// (panic-hygiene test exemption) can see it.
#![cfg(test)]

use flowtune_common::{IndexId, OpId, SimDuration, SimRng};
use flowtune_dataflow::{App, Dag};

use crate::reference::ReferenceSkylineScheduler;
use crate::schedule::{BuildRef, Schedule};
use crate::skyline::{OptionalOp, SchedulerConfig, SkylineScheduler};

fn optional_ops(n: u32, seed: u64) -> Vec<OptionalOp> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| OptionalOp {
            op: OpId(100_000 + i),
            duration: SimDuration::from_secs(1 + rng.uniform_u64(0, 120)),
            build: BuildRef {
                index: IndexId(i / 4),
                part: i % 4,
            },
        })
        .collect()
}

fn assert_identical(dag: &Dag, config: &SchedulerConfig, optional: &[OptionalOp], label: &str) {
    let fast = SkylineScheduler::new(config.clone());
    let slow = ReferenceSkylineScheduler::new(config.clone());
    let got: Vec<Schedule> = fast.schedule_with_optional(dag, optional);
    let want: Vec<Schedule> = slow.schedule_with_optional(dag, optional);
    assert_eq!(
        got.len(),
        want.len(),
        "{label}: skyline widths differ ({} vs {})",
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g, w, "{label}: schedule {i} differs");
    }
}

fn app_dag(app: App, ops: usize, seed: u64) -> Dag {
    let mut rng = SimRng::seed_from_u64(seed);
    app.generate(ops, &[], &mut rng)
}

#[test]
fn equivalent_on_all_apps_at_60_ops() {
    let config = SchedulerConfig {
        max_skyline: 8,
        ..SchedulerConfig::default()
    };
    for app in App::ALL {
        let dag = app_dag(app, 60, 0xE0);
        assert_identical(&dag, &config, &[], &format!("{}:60:plain", app.name()));
        let optional = optional_ops(24, 0xE1);
        assert_identical(
            &dag,
            &config,
            &optional,
            &format!("{}:60:optional", app.name()),
        );
    }
}

#[test]
fn equivalent_on_all_apps_at_100_ops() {
    let config = SchedulerConfig {
        max_skyline: 8,
        ..SchedulerConfig::default()
    };
    for app in App::ALL {
        let dag = app_dag(app, 100, 0xE2);
        assert_identical(&dag, &config, &[], &format!("{}:100:plain", app.name()));
        let optional = optional_ops(32, 0xE3);
        assert_identical(
            &dag,
            &config,
            &optional,
            &format!("{}:100:optional", app.name()),
        );
    }
}

#[test]
fn equivalent_at_default_width_with_heavy_optional_load() {
    // The default 24-wide skyline with more optional ops than slots:
    // stresses tie-collapse between skeleton-equivalent partials and
    // preemption of placed tails.
    let config = SchedulerConfig::default();
    let dag = app_dag(App::Montage, 60, 0xE4);
    let optional = optional_ops(48, 0xE5);
    assert_identical(&dag, &config, &optional, "montage:60:wide-optional");
}

#[test]
fn equivalent_across_skyline_widths_including_one() {
    // Width 1 exercises the fixed division-by-zero cap in both
    // implementations; widths 2/4 exercise the even-spread keep list.
    let dag = app_dag(App::Cybershake, 60, 0xE6);
    for width in [1usize, 2, 4, 16] {
        let config = SchedulerConfig {
            max_skyline: width,
            ..SchedulerConfig::default()
        };
        let optional = optional_ops(12, 0xE7);
        assert_identical(&dag, &config, &[], &format!("cybershake:width{width}"));
        assert_identical(
            &dag,
            &config,
            &optional,
            &format!("cybershake:width{width}:optional"),
        );
    }
}

#[test]
fn equivalent_with_forced_parallel_expansion() {
    // Force the worker pool onto every step (threshold 1) with several
    // thread counts: the sharded enumeration plus ordered concat must
    // reproduce the reference output exactly, optional ops included.
    // Thread count must never matter — that is the determinism
    // contract of DESIGN §5i.
    let dag = app_dag(App::Montage, 80, 0xEA);
    let optional = optional_ops(16, 0xEB);
    for threads in [2usize, 3, 8] {
        let config = SchedulerConfig {
            max_skyline: 8,
            expand_threads: threads,
            expand_threshold: 1,
            ..SchedulerConfig::default()
        };
        assert_identical(&dag, &config, &[], &format!("montage:par{threads}"));
        assert_identical(
            &dag,
            &config,
            &optional,
            &format!("montage:par{threads}:optional"),
        );
    }
}

#[test]
fn parallel_equals_sequential_on_larger_dags() {
    // Beyond reference-feasible sizes the parallel path is pinned
    // against the sequential optimized path (which the suites above
    // pin against the reference transitively at smaller sizes);
    // bench_sched re-asserts reference equivalence at 1k ops in
    // release mode where the reference is affordable.
    for (app, n) in [(App::Cybershake, 400), (App::Montage, 300)] {
        let dag = app_dag(app, n, 0xEC);
        let optional = optional_ops(40, 0xED);
        let seq = SkylineScheduler::new(SchedulerConfig {
            max_skyline: 8,
            expand_threads: 1,
            ..SchedulerConfig::default()
        });
        let par = SkylineScheduler::new(SchedulerConfig {
            max_skyline: 8,
            expand_threads: 4,
            expand_threshold: 1,
            ..SchedulerConfig::default()
        });
        assert_eq!(
            seq.schedule(&dag),
            par.schedule(&dag),
            "{}:{n}: parallel diverged",
            app.name()
        );
        assert_eq!(
            seq.schedule_with_optional(&dag, &optional),
            par.schedule_with_optional(&dag, &optional),
            "{}:{n}: parallel diverged with optional ops",
            app.name()
        );
    }
}

#[test]
fn equivalent_on_zero_duration_and_tight_quantum_edge_cases() {
    // Zero-duration ops produce (s, s) container spans — the `e >= s`
    // billing edge — and a 7s quantum misaligns every lease boundary.
    use flowtune_dataflow::{Edge, OpSpec};
    let ops: Vec<OpSpec> = (0..12)
        .map(|i| {
            OpSpec::new(
                OpId(i),
                format!("op{i}"),
                SimDuration::from_secs((i as u64 * 5) % 3),
            )
        })
        .collect();
    let edges: Vec<Edge> = (1..12)
        .map(|i| Edge {
            from: OpId((i / 2) as u32),
            to: OpId(i as u32),
            bytes: (i as u64 % 3) * 800_000_000,
        })
        .collect();
    let dag = Dag::new(ops, edges).unwrap();
    let config = SchedulerConfig {
        quantum: SimDuration::from_secs(7),
        max_skyline: 6,
        ..SchedulerConfig::default()
    };
    let optional = optional_ops(10, 0xE8);
    assert_identical(&dag, &config, &[], "edge:plain");
    assert_identical(&dag, &config, &optional, "edge:optional");
}
