//! Idle-slot and fragmentation analysis.
//!
//! An idle slot `f(id, q, c, Sd)` is a continuous period inside a leased
//! quantum of a container with no operator running (§3). The
//! *fragmentation* of a schedule is the set of all idle slots — paid-for
//! compute that does no dataflow work, and exactly where build-index
//! operators go.

use flowtune_common::{ContainerId, SimDuration, SimTime};

use crate::schedule::Schedule;

/// One idle slot on a leased container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleSlot {
    /// The container.
    pub container: ContainerId,
    /// Slot start.
    pub start: SimTime,
    /// Slot end.
    pub end: SimTime,
}

impl IdleSlot {
    /// Slot length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// All idle slots of a schedule, per container in time order.
///
/// The leased span of each container is determined by its *dataflow*
/// operators (builds can only live inside an already-leased span); gaps
/// are computed against **all** assignments, so interleaved build
/// operators reduce the reported fragmentation — this is how the Fig. 9
/// "7.14 → 1.6 quanta" measurement is taken.
pub fn idle_slots(schedule: &Schedule, quantum: SimDuration) -> Vec<IdleSlot> {
    let mut slots = Vec::new();
    for c in schedule.containers() {
        let Some((lease_start, lease_end)) = schedule.leased_span(c, quantum) else {
            continue;
        };
        let mut cursor = lease_start;
        for a in schedule.on_container(c) {
            if a.start > cursor {
                slots.push(IdleSlot {
                    container: c,
                    start: cursor,
                    end: a.start,
                });
            }
            cursor = cursor.max(a.end);
        }
        if lease_end > cursor {
            slots.push(IdleSlot {
                container: c,
                start: cursor,
                end: lease_end,
            });
        }
    }
    slots
}

/// Total idle time across all slots (the schedule's fragmentation).
pub fn total_fragmentation(schedule: &Schedule, quantum: SimDuration) -> SimDuration {
    idle_slots(schedule, quantum)
        .iter()
        .map(IdleSlot::duration)
        .sum()
}

/// The longest single idle slot — the tie-breaking criterion of the
/// skyline scheduler ("the schedule with the most sequential idle
/// compute time is selected").
pub fn longest_idle_slot(schedule: &Schedule, quantum: SimDuration) -> SimDuration {
    idle_slots(schedule, quantum)
        .iter()
        .map(IdleSlot::duration)
        .max()
        .unwrap_or(SimDuration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Assignment, BuildRef, Schedule};
    use flowtune_common::{IndexId, OpId};

    const Q: SimDuration = SimDuration::from_secs(60);

    fn asg(op: u32, c: u32, s: u64, e: u64) -> Assignment {
        Assignment {
            op: OpId(op),
            container: ContainerId(c),
            start: SimTime::from_secs(s),
            end: SimTime::from_secs(e),
            build: None,
        }
    }

    #[test]
    fn gaps_and_tail_are_idle() {
        // c0: op [0,10), op [30,50) -> idle [10,30) and [50,60).
        let s = Schedule::from_assignments(vec![asg(0, 0, 0, 10), asg(1, 0, 30, 50)]);
        let slots = idle_slots(&s, Q);
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].start, SimTime::from_secs(10));
        assert_eq!(slots[0].end, SimTime::from_secs(30));
        assert_eq!(slots[1].duration(), SimDuration::from_secs(10));
        assert_eq!(total_fragmentation(&s, Q), SimDuration::from_secs(30));
        assert_eq!(longest_idle_slot(&s, Q), SimDuration::from_secs(20));
    }

    #[test]
    fn head_gap_when_first_op_starts_mid_quantum() {
        // First op at 70s -> leased from 60s; idle head [60,70).
        let s = Schedule::from_assignments(vec![asg(0, 0, 70, 110)]);
        let slots = idle_slots(&s, Q);
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].start, SimTime::from_secs(60));
        assert_eq!(slots[0].end, SimTime::from_secs(70));
        assert_eq!(slots[1].start, SimTime::from_secs(110));
        assert_eq!(slots[1].end, SimTime::from_secs(120));
    }

    #[test]
    fn perfectly_packed_container_has_no_idle() {
        let s = Schedule::from_assignments(vec![asg(0, 0, 0, 30), asg(1, 0, 30, 60)]);
        assert!(idle_slots(&s, Q).is_empty());
        assert_eq!(total_fragmentation(&s, Q), SimDuration::ZERO);
        assert_eq!(longest_idle_slot(&s, Q), SimDuration::ZERO);
    }

    #[test]
    fn build_ops_consume_idle_time() {
        let mut s = Schedule::from_assignments(vec![asg(0, 0, 0, 10), asg(1, 0, 30, 50)]);
        let before = total_fragmentation(&s, Q);
        s.try_insert_build(
            ContainerId(0),
            SimTime::from_secs(12),
            SimTime::from_secs(28),
            OpId(100),
            BuildRef {
                index: IndexId(0),
                part: 0,
            },
            Q,
        )
        .unwrap();
        let after = total_fragmentation(&s, Q);
        assert_eq!(before - after, SimDuration::from_secs(16));
    }

    #[test]
    fn scheduler_tie_break_cache_agrees_with_idle_slot_analysis() {
        // The skyline scheduler's incrementally maintained tie-break
        // value (DESIGN §5f) must agree with this module's independent
        // from-schedule idle-slot analysis on dataflow-only schedules:
        // two implementations, one invariant. (Durations are kept
        // nonzero: for a container whose only ops are zero-duration the
        // tie-break deliberately ignores the lease while the slot
        // analysis reports it idle.)
        use crate::skyline::SkylineScheduler;
        use flowtune_common::SimDuration as D;
        use flowtune_common::SimRng;
        use flowtune_dataflow::{Dag, Edge, OpSpec};

        let sched = SkylineScheduler::default();
        let q = sched.config.quantum;
        let mut rng = SimRng::seed_from_u64(0x51075);
        for _ in 0..40 {
            let n = 2 + rng.uniform_u64(1, 10) as usize;
            let ops: Vec<OpSpec> = (0..n)
                .map(|i| {
                    OpSpec::new(
                        OpId(i as u32),
                        format!("op{i}"),
                        D::from_secs(1 + rng.uniform_u64(0, 89)),
                    )
                })
                .collect();
            let edges: Vec<Edge> = (1..n)
                .map(|i| Edge {
                    from: OpId(rng.uniform_u64(0, i as u64) as u32),
                    to: OpId(i as u32),
                    bytes: 0,
                })
                .collect();
            let dag = Dag::new(ops, edges).unwrap();
            let mut p = crate::skyline::Partial::new(n);
            for i in 0..n {
                let c = rng.uniform_u64(0, p.containers_used() as u64 + 1) as usize;
                p = sched.assign_dataflow_op(&p, &dag, OpId(i as u32), c);
            }
            let cached = p.idle_cached(q);
            let schedule = p.into_schedule();
            assert_eq!(
                cached,
                longest_idle_slot(&schedule, q),
                "incremental tie-break disagrees with idle-slot analysis"
            );
        }
    }

    #[test]
    fn multi_container_fragmentation_sums() {
        let s = Schedule::from_assignments(vec![asg(0, 0, 0, 60), asg(1, 1, 0, 45)]);
        // c0 fully packed; c1 idle [45,60).
        assert_eq!(total_fragmentation(&s, Q), SimDuration::from_secs(15));
        let slots = idle_slots(&s, Q);
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].container, ContainerId(1));
    }
}
