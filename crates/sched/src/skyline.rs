//! The skyline (Pareto) dataflow scheduler — Algorithm 4.
//!
//! Operators are assigned in dependency order; after each assignment the
//! set of non-dominated partial schedules over (execution time, monetary
//! cost) is recomputed. Between schedules equal in both objectives, the
//! one with the most sequential idle compute time wins (idle slots are
//! where index builds go); when optional build operators are offered
//! (§5.3.2, online interleaving), schedules with more operators win ties
//! instead.
//!
//! Two pragmatic bounds keep the exponential search tractable, both
//! standard for this scheduler family: candidate containers are the
//! already-used ones plus one fresh container (symmetry breaking), and
//! the skyline is capped at [`SchedulerConfig::max_skyline`] schedules
//! (evenly spaced along the time axis, extremes always kept).
//!
//! # Incremental search state (DESIGN §5f)
//!
//! This is the inner loop of every run, so the search state is built
//! for cheap expansion (byte-identical to [`crate::reference`], pinned
//! by golden tests in `equivalence_tests`):
//!
//! * **Cached objectives.** [`Partial::money`] carries the billed
//!   quanta; assigning an operator changes only the touched container's
//!   lease contribution, so the objective is a subtract/add instead of
//!   an O(containers) rescan inside every sort comparator.
//!   [`Partial::gap_internal`] keeps, per container, the longest idle
//!   gap strictly before the billing tail; the idle tie-break becomes
//!   an O(containers) fold instead of re-collecting and re-sorting all
//!   assignments, and is memoized per candidate within one reduction.
//! * **Delta expansion.** A candidate expansion is a [`Cand`]: parent
//!   index plus a [`Delta`] and the already-computed objective values.
//!   The reduction (sort, tie-collapse, dominance, width cap) runs
//!   entirely on candidates; only the survivors — at most
//!   `max_skyline` per step, not width × containers — are materialized
//!   into full [`Partial`] clones. The `sched.partials_expanded` /
//!   `sched.partial_clone_bytes` counters (vs `sched.candidates`)
//!   record the clones this avoids.
//! * **Split assignment lists.** Dataflow assignments are append-only
//!   and kept apart from the preemptible optional (build) tail ops, so
//!   preempting an optional op never rewrites dataflow history; the
//!   final assignment order of the legacy single list is reproduced at
//!   materialization time from each optional op's interleave position.
//!
//! # Scale state (DESIGN §5i)
//!
//! Three additions keep 1k–10k-op DAGs tractable, still byte-identical
//! to the reference:
//!
//! * **Chunked copy-on-write state.** [`OpState`] (per-op placement)
//!   and [`AsgList`] (assignment history) store fixed-size chunks
//!   behind `Arc`; a survivor clone copies pointer tables instead of
//!   O(n_ops) payloads, so materialization cost stops growing with DAG
//!   size (priced by `sched.partial_clone_bytes`).
//! * **O(1) tie-break.** [`IdleTops`] memoizes each parent's two
//!   largest per-container idle contributions once per reduction; a
//!   candidate's tie-break value is a constant-time combine instead of
//!   an O(containers) rescan.
//! * **Deterministic parallel expansion.** Above
//!   [`SchedulerConfig::expand_threshold`] candidates per step, an
//!   [`ExpandPool`] shards the flattened candidate index space across
//!   workers in fixed contiguous ranges and concatenates the results
//!   in shard order — the candidate vector is byte-identical to the
//!   sequential enumeration for every thread count.

use std::sync::mpsc;
use std::sync::Arc;

use flowtune_common::{ContainerId, Money, OpId, SimDuration, SimTime};
use flowtune_dataflow::Dag;

use crate::schedule::{Assignment, BuildRef, Schedule};

/// Scheduler parameters.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Maximum containers a schedule may lease (Table 3: 100).
    pub max_containers: u32,
    /// Skyline width cap.
    pub max_skyline: usize,
    /// Billing quantum.
    pub quantum: SimDuration,
    /// Per-quantum VM price.
    pub vm_price: Money,
    /// Network bandwidth (bytes/s) for inter-container edge transfers.
    pub network_bandwidth: f64,
    /// Worker threads for parallel candidate expansion: `0` = one per
    /// available core (capped at 8), `1` = always sequential. The
    /// output is byte-identical for every value — threads only shard
    /// the candidate enumeration (DESIGN §5i).
    pub expand_threads: usize,
    /// Minimum candidates in one step before the worker pool engages;
    /// below it the per-step channel round-trip costs more than the
    /// expansion itself.
    pub expand_threshold: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_containers: 100,
            max_skyline: 24,
            quantum: SimDuration::from_secs(60),
            vm_price: Money::from_dollars(0.1),
            network_bandwidth: 1e9 / 8.0,
            expand_threads: 0,
            expand_threshold: 512,
        }
    }
}

/// An optional build-index operator offered to the online interleaving
/// variant of the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct OptionalOp {
    /// Synthetic id (must not collide with dataflow op ids).
    pub op: OpId,
    /// Estimated build duration.
    pub duration: SimDuration,
    /// What it builds.
    pub build: BuildRef,
}

/// The skyline dataflow scheduler.
#[derive(Debug, Clone, Default)]
pub struct SkylineScheduler {
    /// Configuration.
    pub config: SchedulerConfig,
}

/// Billed quanta for one container's dataflow span.
fn lease_quanta(s: SimTime, e: SimTime, quantum: SimDuration) -> u64 {
    let lease_start = s.quantum_floor(quantum);
    let lease_end = e.quantum_ceil(quantum).max(lease_start + quantum);
    (lease_end - lease_start).as_millis() / quantum.as_millis()
}

/// Per-op placement record: end time of the op and the container it ran
/// on (`u32::MAX` = unassigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpSlot {
    end: SimTime,
    container: u32,
}

impl OpSlot {
    const UNASSIGNED: OpSlot = OpSlot {
        end: SimTime::ZERO,
        container: u32::MAX,
    };
}

/// Ops per shared [`OpState`] chunk. 64 slots × 16 bytes = 1 KiB — big
/// enough to amortize the `Arc` bookkeeping, small enough that the
/// copy-on-write clone of one chunk stays cheap.
const OP_CHUNK: usize = 64;

/// Chunked copy-on-write per-op placement state. Cloning a [`Partial`]
/// used to memcpy two dense `n_ops`-sized vectors; at 10k ops that is
/// ~120 KiB per surviving candidate per step. Chunks behind `Arc`
/// shrink the clone to a pointer table (`n_ops / 64` words) — an
/// assignment touches exactly one chunk, so `Arc::make_mut` copies at
/// most 1 KiB no matter how large the DAG is.
#[derive(Debug, Clone)]
struct OpState {
    chunks: Vec<Arc<[OpSlot; OP_CHUNK]>>,
}

impl OpState {
    fn new(n_ops: usize) -> Self {
        // Every chunk starts as a handle on one shared zeroed chunk;
        // construction is O(n_ops / 64), not O(n_ops).
        let zero: Arc<[OpSlot; OP_CHUNK]> = Arc::new([OpSlot::UNASSIGNED; OP_CHUNK]);
        OpState {
            chunks: vec![zero; n_ops.div_ceil(OP_CHUNK)],
        }
    }

    fn get(&self, i: usize) -> OpSlot {
        self.chunks[i / OP_CHUNK][i % OP_CHUNK]
    }

    fn set(&mut self, i: usize, slot: OpSlot) {
        Arc::make_mut(&mut self.chunks[i / OP_CHUNK])[i % OP_CHUNK] = slot;
    }

    /// Bytes a clone of this state memcpys (the pointer table only —
    /// chunk payloads are shared until written).
    fn heap_bytes(&self) -> usize {
        size_of::<usize>() * self.chunks.len()
    }
}

/// Assignments per frozen [`AsgList`] chunk.
const ASG_CHUNK: usize = 32;

/// Append-only assignment list with a frozen, structurally shared
/// prefix. The dataflow history of a partial schedule is immutable —
/// only appended to — so full chunks are frozen behind `Arc` and shared
/// by every descendant; a clone copies the pointer table plus the small
/// mutable tail instead of the whole history.
#[derive(Debug, Clone, Default)]
struct AsgList {
    frozen: Vec<Arc<[Assignment; ASG_CHUNK]>>,
    tail: Vec<Assignment>,
}

impl AsgList {
    fn len(&self) -> usize {
        self.frozen.len() * ASG_CHUNK + self.tail.len()
    }

    fn push(&mut self, a: Assignment) {
        self.tail.push(a);
        if self.tail.len() == ASG_CHUNK {
            let chunk: [Assignment; ASG_CHUNK] = std::array::from_fn(|i| self.tail[i]);
            self.frozen.push(Arc::new(chunk));
            self.tail.clear();
        }
    }

    fn iter(&self) -> impl Iterator<Item = &Assignment> {
        self.frozen
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
    }

    /// Bytes a clone memcpys: the frozen pointer table plus the tail.
    fn heap_bytes(&self) -> usize {
        self.frozen.len() * size_of::<usize>() + self.tail.len() * size_of::<Assignment>()
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Partial {
    /// Dataflow assignments, in assignment (topological-step) order.
    /// Append-only: preemption never touches this list.
    dataflow: AsgList,
    /// Surviving optional (build) assignments, each tagged with the
    /// number of dataflow ops assigned before it was placed — its
    /// interleave position when the final assignment list is merged.
    /// Positions are non-decreasing along the list.
    optional: Vec<(u32, Assignment)>,
    /// Next free time per used container (end of its last dataflow op).
    container_free: Vec<SimTime>,
    /// Span of *dataflow* ops per container (billing basis).
    container_span: Vec<(SimTime, SimTime)>,
    /// Next free time per container counting optional (build) tail ops.
    opt_free: Vec<SimTime>,
    /// Cache: per container, the longest idle gap strictly before the
    /// billing tail — the head gap from the lease start to the first
    /// dataflow op plus every gap between consecutive dataflow ops.
    /// Established on first assignment, extended on each later one; the
    /// tail gap (lease end − last op end) is derived on demand because
    /// the lease end moves with the span.
    gap_internal: Vec<SimDuration>,
    /// Placement (end time, container) of each dataflow op assigned so
    /// far, in chunked copy-on-write storage.
    ops: OpState,
    makespan: SimDuration,
    /// Cache: total billed quanta across containers. Updated by the
    /// touched container's lease-contribution delta on each assignment;
    /// always equals [`Partial::money_quanta`] recomputed from spans.
    money: u64,
    /// Order-sensitive hash of the dataflow assignments; equal hashes =>
    /// identical dataflow skeletons (optional ops excluded).
    skeleton: u64,
}

impl Partial {
    pub(crate) fn new(n_ops: usize) -> Self {
        Partial {
            dataflow: AsgList::default(),
            optional: Vec::new(),
            container_free: Vec::new(),
            container_span: Vec::new(),
            opt_free: Vec::new(),
            gap_internal: Vec::new(),
            ops: OpState::new(n_ops),
            makespan: SimDuration::ZERO,
            money: 0,
            skeleton: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Recompute the billed quanta from the container spans — the
    /// ground truth the cached [`Partial::money`] field must equal
    /// (checked by tests and debug assertions).
    ///
    /// `e >= s` (not `>`): a container whose only ops are zero-duration
    /// has span (s, s) but is still leased and billed one quantum. The
    /// unused-container sentinel (MAX, ZERO) stays excluded.
    /// `Schedule::leased_span` bills the same way, so the search's money
    /// objective matches the reported money.
    fn money_quanta(&self, quantum: SimDuration) -> u64 {
        self.container_span
            .iter()
            .filter(|(s, e)| e >= s)
            .map(|&(s, e)| lease_quanta(s, e, quantum))
            .sum()
    }

    /// Longest single idle gap across containers (tie-break criterion)
    /// from the incremental per-container cache: O(containers). The
    /// search itself now reads [`IdleTops::best`]; tests pin this fold
    /// (and thereby the memo) against `longest_sequential_idle`.
    #[cfg(test)]
    pub(crate) fn idle_cached(&self, quantum: SimDuration) -> SimDuration {
        let mut best = SimDuration::ZERO;
        for (c, &(s, e)) in self.container_span.iter().enumerate() {
            if e <= s {
                continue;
            }
            let lease_start = s.quantum_floor(quantum);
            let lease_end = e.quantum_ceil(quantum).max(lease_start + quantum);
            let free = self.container_free[c];
            best = best.max(self.gap_internal[c]);
            if lease_end > free {
                best = best.max(lease_end - free);
            }
        }
        best
    }

    /// Reference recomputation of the idle tie-break from the raw
    /// dataflow assignments (the pre-cache algorithm); tests pin
    /// `idle_cached` against it.
    #[cfg(test)]
    fn longest_sequential_idle(&self, quantum: SimDuration) -> SimDuration {
        let mut best = SimDuration::ZERO;
        for (c, &(s, e)) in self.container_span.iter().enumerate() {
            if e <= s {
                continue;
            }
            let lease_start = s.quantum_floor(quantum);
            let lease_end = e.quantum_ceil(quantum).max(lease_start + quantum);
            let mut ops: Vec<(SimTime, SimTime)> = self
                .dataflow
                .iter()
                .filter(|a| a.container.index() == c)
                .map(|a| (a.start, a.end))
                .collect();
            ops.sort_unstable();
            let mut cursor = lease_start;
            for (os, oe) in ops {
                if os > cursor {
                    best = best.max(os - cursor);
                }
                cursor = cursor.max(oe);
            }
            if lease_end > cursor {
                best = best.max(lease_end - cursor);
            }
        }
        best
    }

    /// Approximate heap bytes a clone of this partial copies (for the
    /// `sched.partial_clone_bytes` counter). With chunked
    /// copy-on-write storage this is the pointer tables plus the small
    /// mutable tails, not the full per-op history.
    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.dataflow.heap_bytes()
            + self.optional.len() * size_of::<(u32, Assignment)>()
            + self.container_free.len()
                * (2 * size_of::<SimTime>()
                    + size_of::<(SimTime, SimTime)>()
                    + size_of::<SimDuration>())
            + self.ops.heap_bytes()
    }

    /// Number of surviving optional (build) assignments.
    fn optional_count(&self) -> usize {
        self.optional.len()
    }

    /// Number of containers leased so far.
    #[cfg(test)]
    pub(crate) fn containers_used(&self) -> usize {
        self.container_free.len()
    }

    /// Merge the split assignment lists back into the legacy insertion
    /// order: each optional op re-enters just before the dataflow op
    /// whose index equals its recorded interleave position.
    pub(crate) fn into_schedule(self) -> Schedule {
        let mut out = Vec::with_capacity(self.dataflow.len() + self.optional.len());
        let mut opts = self.optional.iter().copied().peekable();
        for (i, &a) in self.dataflow.iter().enumerate() {
            while let Some((pos, oa)) = opts.peek().copied() {
                if pos as usize > i {
                    break;
                }
                out.push(oa);
                opts.next();
            }
            out.push(a);
        }
        out.extend(opts.map(|(_, oa)| oa));
        Schedule::from_assignments(out)
    }
}

/// How a [`Cand`] differs from its parent partial.
#[derive(Debug, Clone, Copy)]
enum Delta {
    /// Assign dataflow op `op` to `container` over `[start, end)`.
    Dataflow {
        op: OpId,
        container: usize,
        start: SimTime,
        end: SimTime,
    },
    /// Place optional build op `op` on `container` over `[start, end)`.
    Optional {
        op: OptionalOp,
        container: usize,
        start: SimTime,
        end: SimTime,
    },
    /// Keep the parent unchanged (offer-optional identity candidate).
    Keep,
}

/// A candidate expansion: a delta against a parent partial plus the
/// objective values reduction needs. No partial is cloned until a
/// candidate survives the reduction.
#[derive(Debug, Clone, Copy)]
struct Cand {
    /// Index of the parent in the current skyline.
    parent: usize,
    delta: Delta,
    makespan: SimDuration,
    money: u64,
    skeleton: u64,
    optional_count: usize,
    /// Tie-break value, memoized on first use within one reduction.
    idle: Option<SimDuration>,
}

/// One container's contribution to the idle tie-break: its longest
/// internal gap or its billing-tail gap, zero for an empty span. The
/// same fold step [`Partial::idle_cached`] runs per container.
fn container_idle(
    quantum: SimDuration,
    s: SimTime,
    e: SimTime,
    free: SimTime,
    gap: SimDuration,
) -> SimDuration {
    if e <= s {
        return SimDuration::ZERO;
    }
    let lease_start = s.quantum_floor(quantum);
    let lease_end = e.quantum_ceil(quantum).max(lease_start + quantum);
    let mut v = gap;
    if lease_end > free {
        v = v.max(lease_end - free);
    }
    v
}

/// Per-parent memo for the idle tie-break: the two largest
/// per-container idle contributions plus the container holding the
/// largest. A dataflow delta changes exactly one container's
/// contribution, so the candidate's tie-break value is
/// `max(new contribution, best over the others)` — and "best over the
/// others" is `best` unless the touched container held it, in which
/// case it is `second`. One O(containers) pass per parent replaces an
/// O(containers) pass per tied candidate.
#[derive(Debug, Clone, Copy)]
struct IdleTops {
    /// Largest contribution (equals [`Partial::idle_cached`]).
    best: SimDuration,
    /// Container holding `best` (`usize::MAX` when no container
    /// contributes, so no candidate container ever matches it).
    best_c: usize,
    /// Largest contribution over the remaining containers; equals
    /// `best` when two containers tie.
    second: SimDuration,
}

impl IdleTops {
    fn of(p: &Partial, quantum: SimDuration) -> IdleTops {
        let mut tops = IdleTops {
            best: SimDuration::ZERO,
            best_c: usize::MAX,
            second: SimDuration::ZERO,
        };
        for (c, &(s, e)) in p.container_span.iter().enumerate() {
            let v = container_idle(quantum, s, e, p.container_free[c], p.gap_internal[c]);
            if v > tops.best {
                tops.second = tops.best;
                tops.best = v;
                tops.best_c = c;
            } else if v > tops.second {
                tops.second = v;
            }
        }
        tops
    }
}

impl SkylineScheduler {
    /// Create a scheduler with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        SkylineScheduler { config }
    }

    /// Schedule a dataflow, returning the skyline of non-dominated
    /// schedules sorted by ascending execution time.
    pub fn schedule(&self, dag: &Dag) -> Vec<Schedule> {
        self.schedule_with_optional(dag, &[])
    }

    /// Schedule a dataflow while opportunistically placing optional
    /// build operators (the online interleaving algorithm of §5.3.2).
    /// Optional operators never delay dataflow operators in surviving
    /// schedules: a schedule where one did is dominated by its sibling
    /// without the operator.
    pub fn schedule_with_optional(&self, dag: &Dag, optional: &[OptionalOp]) -> Vec<Schedule> {
        if dag.is_empty() {
            return vec![Schedule::new()];
        }
        let order = dag.topo_order();
        // Per-(op, predecessor) transfer durations, computed once. The
        // division producing each duration is the same one the old
        // per-candidate recomputation ran, so every placement sees
        // bit-identical times.
        let pred_xfer: Vec<Vec<(OpId, SimDuration)>> = (0..dag.len())
            .map(|i| {
                dag.preds_with_bytes(OpId::from_index(i))
                    .map(|(p, b)| (p, self.transfer_time(b)))
                    .collect()
            })
            .collect();
        let threads = self.effective_expand_threads();
        let mut skyline = if threads > 1 {
            // The worker pool lives for the whole schedule() call —
            // per-step thread spawning would cost more than the steps.
            std::thread::scope(|scope| {
                let pool = ExpandPool::spawn(scope, threads, self, dag, &pred_xfer);
                self.run_steps(dag, optional, &order, &pred_xfer, Some(&pool))
            })
        } else {
            self.run_steps(dag, optional, &order, &pred_xfer, None)
        };
        skyline.sort_by_key(|p| (p.makespan, p.money));
        skyline.into_iter().map(Partial::into_schedule).collect()
    }

    /// Resolved expansion thread count (see
    /// [`SchedulerConfig::expand_threads`]). The count never changes
    /// the output, only how the candidate enumeration is sharded.
    fn effective_expand_threads(&self) -> usize {
        match self.config.expand_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            n => n.min(32),
        }
    }

    /// Candidate containers for expanding `p`: every used container
    /// plus one fresh container while under the fleet cap.
    fn candidate_containers(&self, p: &Partial) -> usize {
        let used = p.container_free.len();
        if (used as u32) < self.config.max_containers {
            used + 1
        } else {
            used
        }
    }

    /// The assignment main loop: expand (sequentially or through the
    /// pool), reduce, materialize, interleave optional offers.
    fn run_steps(
        &self,
        dag: &Dag,
        optional: &[OptionalOp],
        order: &[OpId],
        pred_xfer: &[Vec<(OpId, SimDuration)>],
        pool: Option<&ExpandPool>,
    ) -> Vec<Partial> {
        let n = order.len();
        let mut skyline = Arc::new(vec![Partial::new(dag.len())]);
        // Offer optional ops evenly across the assignment steps.
        let mut next_opt = 0usize;
        for (step, &op) in order.iter().enumerate() {
            // Candidate-count prefix offsets per parent; the final
            // entry is the step's total candidate count. Shared with
            // the workers so a flattened candidate index maps to its
            // (parent, container) pair.
            let mut offsets: Vec<usize> = Vec::with_capacity(skyline.len() + 1);
            let mut total = 0usize;
            for p in skyline.iter() {
                offsets.push(total);
                total += self.candidate_containers(p);
            }
            offsets.push(total);
            let xfer = &pred_xfer[op.index()];
            // Expand every partial with every candidate container —
            // as cheap deltas, not clones.
            let cands: Vec<Cand> = match pool {
                Some(pool) if total >= self.config.expand_threshold => {
                    // flowtune-allow(obs-discipline): the pool engages only above the candidate threshold, which the smoke workload never reaches
                    flowtune_obs::count("sched.parallel_steps", 1);
                    pool.expand(self, dag, xfer, &skyline, op, offsets)
                }
                _ => {
                    let mut cands = Vec::with_capacity(total);
                    for (pi, p) in skyline.iter().enumerate() {
                        for c in 0..self.candidate_containers(p) {
                            cands.push(self.dataflow_cand(p, pi, dag, op, xfer, c));
                        }
                    }
                    cands
                }
            };
            let generated = cands.len();
            let survivors = self.reduce(&skyline, cands);
            skyline = Arc::new(self.materialize_all(&skyline, &survivors));
            flowtune_obs::obs_event!(
                "sched.step",
                step = step,
                op = op.0,
                candidates = generated,
                width = skyline.len(),
            );
            flowtune_obs::count("sched.steps", 1);
            flowtune_obs::count("sched.candidates", generated as u64);
            flowtune_obs::count(
                "sched.pruned",
                generated.saturating_sub(skyline.len()) as u64,
            );
            flowtune_obs::observe("sched.skyline_width", skyline.len() as f64);
            // Offer a proportional share of the optional queue.
            let opt_until = optional.len() * (step + 1) / n;
            while next_opt < opt_until {
                skyline = Arc::new(self.offer_optional(&skyline, &optional[next_opt]));
                next_opt += 1;
            }
        }
        while next_opt < optional.len() {
            skyline = Arc::new(self.offer_optional(&skyline, &optional[next_opt]));
            next_opt += 1;
        }
        // The workers dropped their handles when their last job ended,
        // so the unwrap is ordinarily free; the fallback clone keeps
        // this panic-free regardless.
        Arc::try_unwrap(skyline).unwrap_or_else(|shared| shared.as_ref().clone())
    }

    fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.config.network_bandwidth)
    }

    /// Evaluate assigning `op` to container `c` of `p` without cloning
    /// anything: placement times from the predecessor caches, money from
    /// the touched container's lease delta, the skeleton hash folded
    /// forward, and the optional-op count after preemption. `xfer` is
    /// the op's precomputed per-predecessor transfer-duration list.
    fn dataflow_cand(
        &self,
        p: &Partial,
        parent: usize,
        dag: &Dag,
        op: OpId,
        xfer: &[(OpId, SimDuration)],
        c: usize,
    ) -> Cand {
        let quantum = self.config.quantum;
        let fresh = c == p.container_free.len();
        // Data-ready: every predecessor done, plus transfer when remote.
        let mut ready = SimTime::ZERO;
        for &(pred, dt) in xfer {
            let slot = p.ops.get(pred.index());
            let mut t = slot.end;
            if slot.container != c as u32 {
                t += dt;
            }
            ready = ready.max(t);
        }
        // Dataflow ops see only other dataflow ops: an optional build op
        // occupying the container is preempted (priority -1 in the
        // execution model), so it never delays the dataflow.
        let free = if fresh {
            SimTime::ZERO
        } else {
            p.container_free[c]
        };
        let start = ready.max(free);
        let end = start + dag.op(op).runtime;
        // Only container `c`'s lease contribution changes.
        let money = if fresh {
            p.money + lease_quanta(start, end, quantum)
        } else {
            let (s, e) = p.container_span[c];
            p.money - lease_quanta(s, e, quantum) + lease_quanta(s.min(start), e.max(end), quantum)
        };
        let mut skeleton = p.skeleton;
        for word in [op.0 as u64, c as u64, start.as_millis()] {
            skeleton ^= word;
            skeleton = skeleton.wrapping_mul(0x1000_0000_01b3);
        }
        // Optional tail ops on `c` that this dataflow op would preempt.
        let dropped = p
            .optional
            .iter()
            .filter(|(_, a)| a.container.index() == c && a.end > start)
            .count();
        Cand {
            parent,
            delta: Delta::Dataflow {
                op,
                container: c,
                start,
                end,
            },
            makespan: p.makespan.max(end - SimTime::ZERO),
            money,
            skeleton,
            optional_count: p.optional.len() - dropped,
            idle: None,
        }
    }

    /// The candidate's idle tie-break value, from the parent's
    /// memoized top-2 per-container idle contributions with the touched
    /// container's entry (and a possible fresh container) overridden —
    /// O(1) per candidate instead of O(containers). Optional placements
    /// and identity candidates inherit the parent's value unchanged:
    /// the tie-break only sees dataflow ops.
    fn cand_idle(&self, tops: IdleTops, p: &Partial, delta: &Delta) -> SimDuration {
        let quantum = self.config.quantum;
        let (oc, ostart, oend) = match *delta {
            Delta::Dataflow {
                container,
                start,
                end,
                ..
            } => (container, start, end),
            // The parent's best contribution IS its `idle_cached` value.
            Delta::Optional { .. } | Delta::Keep => return tops.best,
        };
        let used = p.container_free.len();
        // Contribution of the touched container after the assignment.
        let (s, e, free, gap) = if oc == used {
            // Fresh container: head gap from the lease start.
            (ostart, oend, oend, ostart - ostart.quantum_floor(quantum))
        } else {
            let (ps, pe) = p.container_span[oc];
            (
                ps.min(ostart),
                pe.max(oend),
                oend,
                p.gap_internal[oc].max(ostart - p.container_free[oc]),
            )
        };
        let touched = container_idle(quantum, s, e, free, gap);
        // Max over the untouched containers: the parent's best, unless
        // the touched container held it — then the runner-up.
        let others = if oc == tops.best_c {
            tops.second
        } else {
            tops.best
        };
        touched.max(others)
    }

    /// Materialize a surviving candidate: one clone of its parent plus
    /// the delta — the only place the search copies a partial.
    fn materialize(&self, parent: &Partial, cand: &Cand) -> Partial {
        flowtune_obs::count("sched.partials_expanded", 1);
        flowtune_obs::count("sched.partial_clone_bytes", parent.heap_bytes() as u64);
        let mut q = parent.clone();
        match cand.delta {
            Delta::Dataflow {
                op,
                container: c,
                start,
                end,
            } => {
                let fresh = c == q.container_free.len();
                if fresh {
                    q.container_free.push(SimTime::ZERO);
                    q.container_span.push((SimTime::MAX, SimTime::ZERO));
                    q.opt_free.push(SimTime::ZERO);
                    q.gap_internal.push(SimDuration::ZERO);
                }
                // Extend the idle-gap cache: the gap this op leaves
                // behind it is final (later ops start no earlier).
                let gap = if fresh {
                    start - start.quantum_floor(self.config.quantum)
                } else {
                    start - q.container_free[c]
                };
                q.gap_internal[c] = q.gap_internal[c].max(gap);
                // Preempt optional tail ops that would overlap: drop the
                // ones not yet started, truncation of a running one is
                // the simulator's business.
                q.optional
                    .retain(|(_, a)| !(a.container.index() == c && a.end > start));
                q.dataflow.push(Assignment {
                    op,
                    container: ContainerId(c as u32),
                    start,
                    end,
                    build: None,
                });
                q.container_free[c] = end;
                q.opt_free[c] = q.opt_free[c].max(end);
                let (s, e) = q.container_span[c];
                q.container_span[c] = (s.min(start), e.max(end));
                q.ops.set(
                    op.index(),
                    OpSlot {
                        end,
                        container: c as u32,
                    },
                );
            }
            Delta::Optional {
                op,
                container: c,
                start,
                end,
            } => {
                q.optional.push((
                    q.dataflow.len() as u32,
                    Assignment {
                        op: op.op,
                        container: ContainerId(c as u32),
                        start,
                        end,
                        build: Some(op.build),
                    },
                ));
                q.opt_free[c] = end;
            }
            Delta::Keep => {}
        }
        q.makespan = cand.makespan;
        q.money = cand.money;
        q.skeleton = cand.skeleton;
        debug_assert_eq!(q.money, q.money_quanta(self.config.quantum));
        debug_assert_eq!(q.optional_count(), cand.optional_count);
        q
    }

    fn materialize_all(&self, skyline: &[Partial], survivors: &[Cand]) -> Vec<Partial> {
        survivors
            .iter()
            .map(|cand| self.materialize(&skyline[cand.parent], cand))
            .collect()
    }

    /// Union each partial with versions that place `opt` on some
    /// container's free tail inside the current leased span.
    fn offer_optional(&self, skyline: &[Partial], opt: &OptionalOp) -> Vec<Partial> {
        let quantum = self.config.quantum;
        let mut cands: Vec<Cand> = Vec::with_capacity(skyline.len() * 2);
        for (pi, p) in skyline.iter().enumerate() {
            for c in 0..p.container_free.len() {
                let (s, e) = p.container_span[c];
                if e <= s {
                    continue;
                }
                let lease_start = s.quantum_floor(quantum);
                let lease_end = e.quantum_ceil(quantum).max(lease_start + quantum);
                let start = p.opt_free[c].max(p.container_free[c]);
                let end = start + opt.duration;
                if end <= lease_end {
                    cands.push(Cand {
                        parent: pi,
                        delta: Delta::Optional {
                            op: *opt,
                            container: c,
                            start,
                            end,
                        },
                        makespan: p.makespan,
                        money: p.money,
                        skeleton: p.skeleton,
                        optional_count: p.optional.len() + 1,
                        idle: None,
                    });
                }
            }
        }
        for (pi, p) in skyline.iter().enumerate() {
            cands.push(Cand {
                parent: pi,
                delta: Delta::Keep,
                makespan: p.makespan,
                money: p.money,
                skeleton: p.skeleton,
                optional_count: p.optional.len(),
                idle: None,
            });
        }
        let survivors = self.reduce(skyline, cands);
        self.materialize_all(skyline, &survivors)
    }

    /// Skyline reduction over candidates: collapse equal (time, money)
    /// groups with the tie-break (most sequential idle, then — between
    /// identical dataflow skeletons — more optional operators), drop
    /// dominated candidates, cap the width. Runs entirely on deltas;
    /// the tie-break value is computed lazily and memoized per
    /// candidate.
    fn reduce(&self, skyline: &[Partial], mut cands: Vec<Cand>) -> Vec<Cand> {
        let quantum = self.config.quantum;
        cands.sort_by_key(|c| (c.makespan, c.money));
        // Lazy per-parent top-2 idle memo: computed once for a parent
        // the first time one of its candidates hits a tie.
        let mut tops: Vec<Option<IdleTops>> = vec![None; skyline.len()];
        // Collapse ties.
        let mut collapsed: Vec<Cand> = Vec::new();
        for mut p in cands {
            match collapsed.last_mut() {
                Some(last) if last.makespan == p.makespan && last.money == p.money => {
                    // Primary tie-break: most sequential idle over the
                    // dataflow skeleton (as the plain scheduler). Only
                    // between skeleton-equivalent candidates does the
                    // optional-operator count decide (§5.3.2).
                    let (pp, pd) = (p.parent, p.delta);
                    let p_idle = *p.idle.get_or_insert_with(|| {
                        let t =
                            *tops[pp].get_or_insert_with(|| IdleTops::of(&skyline[pp], quantum));
                        self.cand_idle(t, &skyline[pp], &pd)
                    });
                    let (lp, ld) = (last.parent, last.delta);
                    let last_idle = *last.idle.get_or_insert_with(|| {
                        let t =
                            *tops[lp].get_or_insert_with(|| IdleTops::of(&skyline[lp], quantum));
                        self.cand_idle(t, &skyline[lp], &ld)
                    });
                    let better = match p_idle.cmp(&last_idle) {
                        std::cmp::Ordering::Greater => {
                            flowtune_obs::count("sched.tiebreak_idle", 1);
                            true
                        }
                        std::cmp::Ordering::Less => false,
                        // The operator count only decides between
                        // *identical* dataflow skeletons; across different
                        // skeletons we keep the incumbent exactly as the
                        // plain scheduler would, so offering optional ops
                        // never changes how the front evolves.
                        std::cmp::Ordering::Equal => {
                            let wins = p.skeleton == last.skeleton
                                && p.optional_count > last.optional_count;
                            if wins {
                                // flowtune-allow(obs-discipline): needs an optional-count tiebreak win, which the smoke workload never produces
                                flowtune_obs::count("sched.tiebreak_optcount", 1);
                            }
                            wins
                        }
                    };
                    if better {
                        *last = p;
                    }
                }
                _ => collapsed.push(p),
            }
        }
        // Drop dominated: sorted by time asc, keep strictly decreasing money.
        let mut front: Vec<Cand> = Vec::new();
        let mut best_money = u64::MAX;
        for p in collapsed {
            if p.money < best_money {
                best_money = p.money;
                front.push(p);
            }
        }
        // Cap width, keeping extremes and an even spread. A cap of one
        // keeps the fastest schedule (the even-spread index formula
        // divides by `max_skyline - 1`).
        if front.len() > self.config.max_skyline {
            if self.config.max_skyline <= 1 {
                front.truncate(self.config.max_skyline);
                return front;
            }
            let n = front.len();
            let keep: Vec<usize> = (0..self.config.max_skyline)
                .map(|i| i * (n - 1) / (self.config.max_skyline - 1))
                .collect();
            let mut kept = Vec::with_capacity(self.config.max_skyline);
            let mut front_iter = front.into_iter().enumerate();
            let mut keep_iter = keep.into_iter().peekable();
            for (i, p) in front_iter.by_ref() {
                if keep_iter.peek() == Some(&i) {
                    kept.push(p);
                    keep_iter.next();
                }
            }
            front = kept;
        }
        front
    }

    /// Per-predecessor transfer durations for one op (the list
    /// [`SkylineScheduler::schedule_with_optional`] precomputes for
    /// every op up front).
    #[cfg(test)]
    fn op_xfer(&self, dag: &Dag, op: OpId) -> Vec<(OpId, SimDuration)> {
        dag.preds_with_bytes(op)
            .map(|(p, b)| (p, self.transfer_time(b)))
            .collect()
    }

    /// Test-only convenience mirroring the legacy single-shot
    /// assignment: evaluate the candidate and materialize it.
    #[cfg(test)]
    pub(crate) fn assign_dataflow_op(&self, p: &Partial, dag: &Dag, op: OpId, c: usize) -> Partial {
        let xfer = self.op_xfer(dag, op);
        let cand = self.dataflow_cand(p, 0, dag, op, &xfer, c);
        self.materialize(p, &cand)
    }
}

/// One expansion job: the shard `[lo, hi)` of the step's flattened
/// candidate index space, against a shared snapshot of the skyline.
struct ExpandJob {
    skyline: Arc<Vec<Partial>>,
    op: OpId,
    lo: usize,
    hi: usize,
    /// Candidate-count prefix offsets per parent with the total as the
    /// final entry; maps a flattened index back to (parent, container).
    offsets: Arc<Vec<usize>>,
}

/// Deterministic parallel candidate expansion (DESIGN §5i).
///
/// Workers are spawned once per `schedule()` call inside a
/// `std::thread::scope` and fed one contiguous shard of the step's
/// flattened candidate index space each. Because the shards partition
/// `0..total` in worker order and the results are concatenated in the
/// same order, the candidate vector is byte-identical to the
/// sequential enumeration — for any thread count, on any machine. The
/// workers never touch observability (the recorder is thread-local to
/// the caller) and never mutate shared state: they read the skyline
/// snapshot and return owned `Cand` vectors.
struct ExpandPool {
    jobs: Vec<mpsc::Sender<ExpandJob>>,
    results: mpsc::Receiver<(usize, Vec<Cand>)>,
}

/// Map a flattened candidate index to its parent via the offset table
/// (last entry = total): the parent is the rightmost offset <= k.
fn parent_of(offsets: &[usize], k: usize) -> usize {
    offsets.partition_point(|&o| o <= k) - 1
}

impl ExpandPool {
    fn spawn<'scope, 'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        threads: usize,
        sched: &'env SkylineScheduler,
        dag: &'env Dag,
        pred_xfer: &'env [Vec<(OpId, SimDuration)>],
    ) -> ExpandPool {
        let (result_tx, results) = mpsc::channel::<(usize, Vec<Cand>)>();
        let mut jobs = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = mpsc::channel::<ExpandJob>();
            jobs.push(tx);
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Ok(job) = rx.recv() {
                    let xfer = &pred_xfer[job.op.index()];
                    let mut out = Vec::with_capacity(job.hi - job.lo);
                    for k in job.lo..job.hi {
                        let pi = parent_of(&job.offsets, k);
                        let c = k - job.offsets[pi];
                        out.push(sched.dataflow_cand(&job.skyline[pi], pi, dag, job.op, xfer, c));
                    }
                    if result_tx.send((w, out)).is_err() {
                        break;
                    }
                }
            });
        }
        // Drop the main-thread result sender so `recv` can observe
        // disconnection instead of blocking forever if workers die.
        drop(result_tx);
        ExpandPool { jobs, results }
    }

    /// Expand one step's candidates across the pool. Always returns
    /// the full, ordered candidate vector: any shard a worker failed to
    /// deliver (unreachable in practice — the workers run pure
    /// computation) is recomputed inline.
    fn expand(
        &self,
        sched: &SkylineScheduler,
        dag: &Dag,
        xfer: &[(OpId, SimDuration)],
        skyline: &Arc<Vec<Partial>>,
        op: OpId,
        offsets: Vec<usize>,
    ) -> Vec<Cand> {
        let total = offsets.last().copied().unwrap_or(0);
        let threads = self.jobs.len();
        let chunk = total.div_ceil(threads.max(1));
        let offsets = Arc::new(offsets);
        let mut sent = 0usize;
        for (w, tx) in self.jobs.iter().enumerate() {
            let (lo, hi) = (w * chunk, ((w + 1) * chunk).min(total));
            if lo >= hi {
                continue;
            }
            let job = ExpandJob {
                skyline: Arc::clone(skyline),
                op,
                lo,
                hi,
                offsets: Arc::clone(&offsets),
            };
            if tx.send(job).is_ok() {
                sent += 1;
            }
        }
        let mut shards: Vec<Option<Vec<Cand>>> = (0..threads).map(|_| None).collect();
        for _ in 0..sent {
            match self.results.recv() {
                Ok((w, out)) => shards[w] = Some(out),
                Err(_) => break,
            }
        }
        let mut cands = Vec::with_capacity(total);
        for (w, shard) in shards.into_iter().enumerate() {
            match shard {
                Some(out) => cands.extend(out),
                None => {
                    let (lo, hi) = (w * chunk, ((w + 1) * chunk).min(total));
                    for k in lo..hi.max(lo) {
                        let pi = parent_of(&offsets, k);
                        let c = k - offsets[pi];
                        cands.push(sched.dataflow_cand(&skyline[pi], pi, dag, op, xfer, c));
                    }
                }
            }
        }
        cands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::IndexId;
    use flowtune_common::SimRng;
    use flowtune_dataflow::{App, Edge, OpSpec};

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::default()
    }

    fn op(i: u32, secs: u64) -> OpSpec {
        OpSpec::new(OpId(i), format!("op{i}"), SimDuration::from_secs(secs))
    }

    /// Fork-join: 0 -> {1,2,3} -> 4.
    fn fork_join() -> Dag {
        Dag::new(
            vec![op(0, 10), op(1, 30), op(2, 30), op(3, 30), op(4, 10)],
            vec![
                Edge {
                    from: OpId(0),
                    to: OpId(1),
                    bytes: 0,
                },
                Edge {
                    from: OpId(0),
                    to: OpId(2),
                    bytes: 0,
                },
                Edge {
                    from: OpId(0),
                    to: OpId(3),
                    bytes: 0,
                },
                Edge {
                    from: OpId(1),
                    to: OpId(4),
                    bytes: 0,
                },
                Edge {
                    from: OpId(2),
                    to: OpId(4),
                    bytes: 0,
                },
                Edge {
                    from: OpId(3),
                    to: OpId(4),
                    bytes: 0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn skyline_schedules_are_valid() {
        let sched = SkylineScheduler::new(cfg());
        let dag = fork_join();
        let skyline = sched.schedule(&dag);
        assert!(!skyline.is_empty());
        for s in &skyline {
            s.validate(&dag).unwrap();
        }
    }

    #[test]
    fn skyline_is_nondominated_and_sorted() {
        let sched = SkylineScheduler::new(cfg());
        let skyline = sched.schedule(&fork_join());
        let pts: Vec<(SimDuration, u64)> = skyline
            .iter()
            .map(|s| (s.makespan(), s.leased_quanta(SimDuration::from_secs(60))))
            .collect();
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0, "time must strictly increase: {pts:?}");
            assert!(w[0].1 > w[1].1, "money must strictly decrease: {pts:?}");
        }
    }

    #[test]
    fn fork_join_extremes() {
        let sched = SkylineScheduler::new(cfg());
        let skyline = sched.schedule(&fork_join());
        // Fastest: 3 parallel branches -> 10 + 30 + 10 = 50 s.
        let fastest = skyline.first().unwrap();
        assert_eq!(fastest.makespan(), SimDuration::from_secs(50));
        // Cheapest end of the front: the partial-schedule skyline is a
        // heuristic (prefixes of the globally cheapest schedule can be
        // dominated mid-search), so assert a bound rather than the
        // 2-quanta optimum.
        let cheapest = skyline.last().unwrap();
        assert!(cheapest.leased_quanta(SimDuration::from_secs(60)) <= 3);
        assert!(
            cheapest.leased_quanta(SimDuration::from_secs(60))
                <= skyline[0].leased_quanta(SimDuration::from_secs(60))
        );
    }

    #[test]
    fn communication_cost_discourages_pointless_spread() {
        // 0 -> 1 with a huge edge: remote placement adds transfer time.
        let dag = Dag::new(
            vec![op(0, 10), op(1, 10)],
            vec![Edge {
                from: OpId(0),
                to: OpId(1),
                bytes: 5_000_000_000,
            }],
        )
        .unwrap();
        let sched = SkylineScheduler::new(cfg());
        let skyline = sched.schedule(&dag);
        // The fastest schedule co-locates: makespan exactly 20 s.
        assert_eq!(skyline[0].makespan(), SimDuration::from_secs(20));
        assert_eq!(skyline[0].containers().len(), 1);
    }

    #[test]
    fn respects_max_containers() {
        let mut c = cfg();
        c.max_containers = 2;
        let sched = SkylineScheduler::new(c);
        let skyline = sched.schedule(&fork_join());
        for s in &skyline {
            assert!(s.containers().len() <= 2);
        }
    }

    #[test]
    fn skyline_width_is_capped() {
        let mut c = cfg();
        c.max_skyline = 3;
        let sched = SkylineScheduler::new(c);
        let mut rng = SimRng::seed_from_u64(1);
        let dag = App::Montage.generate(60, &[], &mut rng);
        let skyline = sched.schedule(&dag);
        assert!(skyline.len() <= 3);
        for s in &skyline {
            s.validate(&dag).unwrap();
        }
    }

    #[test]
    fn max_skyline_of_one_keeps_the_fastest_schedule() {
        // Regression: the even-spread width cap divided by
        // `max_skyline - 1` and panicked when the cap was 1.
        let mut c = cfg();
        c.max_skyline = 1;
        let sched = SkylineScheduler::new(c);
        let dag = fork_join();
        let skyline = sched.schedule(&dag);
        assert_eq!(skyline.len(), 1);
        skyline[0].validate(&dag).unwrap();
        // The time extreme survives every reduction, so the single kept
        // schedule is the fastest: 10 + 30 + 10 = 50 s.
        assert_eq!(skyline[0].makespan(), SimDuration::from_secs(50));
        // Larger seeded dataflow, with and without optional ops.
        let mut rng = SimRng::seed_from_u64(11);
        let dag = App::Montage.generate(60, &[], &mut rng);
        let optional: Vec<OptionalOp> = (0..8)
            .map(|i| OptionalOp {
                op: OpId(2000 + i),
                duration: SimDuration::from_secs(5),
                build: BuildRef {
                    index: IndexId(i),
                    part: 0,
                },
            })
            .collect();
        let skyline = sched.schedule_with_optional(&dag, &optional);
        assert_eq!(skyline.len(), 1);
        skyline[0].validate(&dag).unwrap();
    }

    #[test]
    fn scales_to_100_op_scientific_dataflows() {
        let sched = SkylineScheduler::new(cfg());
        let mut rng = SimRng::seed_from_u64(2);
        for app in App::ALL {
            let dag = app.generate(100, &[], &mut rng);
            let skyline = sched.schedule(&dag);
            assert!(!skyline.is_empty(), "{}", app.name());
            for s in &skyline {
                s.validate(&dag).unwrap();
                assert!(s.makespan() >= dag.critical_path(), "{}", app.name());
            }
        }
    }

    #[test]
    fn optional_ops_never_hurt_time_or_money() {
        let sched = SkylineScheduler::new(cfg());
        let dag = fork_join();
        let baseline = sched.schedule(&dag);
        let optional: Vec<OptionalOp> = (0..6)
            .map(|i| OptionalOp {
                op: OpId(1000 + i),
                duration: SimDuration::from_secs(8),
                build: BuildRef {
                    index: IndexId(i),
                    part: 0,
                },
            })
            .collect();
        let with_opt = sched.schedule_with_optional(&dag, &optional);
        // Pareto front must not regress.
        let q = SimDuration::from_secs(60);
        for b in &baseline {
            let covered = with_opt
                .iter()
                .any(|s| s.makespan() <= b.makespan() && s.leased_quanta(q) <= b.leased_quanta(q));
            assert!(covered, "optional ops regressed the skyline");
        }
        // And at least one schedule carries build ops.
        let built: usize = with_opt
            .iter()
            .map(|s| s.build_assignments().count())
            .max()
            .unwrap();
        assert!(built > 0, "no optional op was ever placed");
    }

    #[test]
    fn zero_duration_op_still_bills_one_quantum() {
        // Regression: the old `e > s` billing filter dropped containers
        // whose only assignments are zero-duration, yielding a leased
        // container with zero billed quanta.
        let sched = SkylineScheduler::new(cfg());
        let dag = Dag::new(vec![op(0, 0)], vec![]).unwrap();
        let p = sched.assign_dataflow_op(&Partial::new(1), &dag, OpId(0), 0);
        assert_eq!(p.container_free.len(), 1);
        assert_eq!(p.money_quanta(SimDuration::from_secs(60)), 1);
        assert_eq!(p.money, 1, "cached money must bill the zero-span lease");
    }

    #[test]
    fn property_every_leased_container_is_billed() {
        // Random chains with zero-duration ops mixed in, assigned to
        // random containers: every container that received an op must
        // be billed at least one quantum, and the search's money
        // objective must agree with the reported leased quanta.
        let sched = SkylineScheduler::new(cfg());
        let quantum = SimDuration::from_secs(60);
        let mut rng = SimRng::seed_from_u64(0xB111);
        for _ in 0..100 {
            let n = 1 + rng.uniform_u64(1, 9) as usize;
            let ops: Vec<OpSpec> = (0..n)
                .map(|i| op(i as u32, rng.uniform_u64(0, 3)))
                .collect();
            let edges: Vec<Edge> = (1..n)
                .map(|i| Edge {
                    from: OpId(i as u32 - 1),
                    to: OpId(i as u32),
                    bytes: 0,
                })
                .collect();
            let dag = Dag::new(ops, edges).unwrap();
            let mut p = Partial::new(n);
            for i in 0..n {
                let used = p.container_free.len();
                let c = rng.uniform_u64(0, used as u64 + 1) as usize;
                p = sched.assign_dataflow_op(&p, &dag, OpId(i as u32), c);
            }
            let leased = p.container_free.len() as u64;
            assert!(
                p.money_quanta(quantum) >= leased,
                "container leased but unbilled: {} quanta for {leased} containers",
                p.money_quanta(quantum),
            );
            assert_eq!(
                p.money,
                p.money_quanta(quantum),
                "cached money objective drifted from the span recomputation"
            );
            let schedule = p.clone().into_schedule();
            assert_eq!(
                p.money_quanta(quantum),
                schedule.leased_quanta(quantum),
                "search money objective disagrees with reported billing"
            );
        }
    }

    #[test]
    fn property_cached_state_matches_recomputation() {
        // Random fork-ish dags scheduled through the public API *and*
        // random manual expansion sequences: the incremental caches
        // (money, per-container idle gaps) must always equal a from-
        // scratch recomputation — the invariants of DESIGN §5f.
        let sched = SkylineScheduler::new(cfg());
        let quantum = SimDuration::from_secs(60);
        let mut rng = SimRng::seed_from_u64(0xCACE);
        for round in 0..50 {
            let n = 2 + rng.uniform_u64(1, 12) as usize;
            let ops: Vec<OpSpec> = (0..n)
                .map(|i| op(i as u32, rng.uniform_u64(0, 40)))
                .collect();
            let edges: Vec<Edge> = (1..n)
                .map(|i| Edge {
                    from: OpId(rng.uniform_u64(0, i as u64) as u32),
                    to: OpId(i as u32),
                    bytes: rng.uniform_u64(0, 2) * 1_000_000,
                })
                .collect();
            let dag = Dag::new(ops, edges).unwrap();
            let mut p = Partial::new(n);
            for i in 0..n {
                let used = p.container_free.len();
                let c = rng.uniform_u64(0, used as u64 + 1) as usize;
                // The candidate's objectives must match what its
                // materialization then caches.
                let xfer = sched.op_xfer(&dag, OpId(i as u32));
                let cand = sched.dataflow_cand(&p, 0, &dag, OpId(i as u32), &xfer, c);
                p = sched.materialize(&p, &cand);
                assert_eq!(p.money, p.money_quanta(quantum), "round {round} step {i}");
                assert_eq!(
                    p.idle_cached(quantum),
                    p.longest_sequential_idle(quantum),
                    "idle cache drifted at round {round} step {i}"
                );
            }
        }
    }

    #[test]
    fn preemption_keeps_optional_accounting_consistent() {
        // Seeded random expansion sequences interleaving dataflow
        // assignments with optional offers: after `assign_dataflow_op`
        // drops overlapping optional tails, the candidate's predicted
        // `optional_count` and the partial's accounting must both match
        // the surviving build assignments, and no surviving build may
        // overlap a dataflow op on its container.
        let sched = SkylineScheduler::new(cfg());
        let mut rng = SimRng::seed_from_u64(0x0FF3);
        for round in 0..30 {
            let n = 3 + rng.uniform_u64(1, 10) as usize;
            let ops: Vec<OpSpec> = (0..n)
                .map(|i| op(i as u32, 5 + rng.uniform_u64(0, 50)))
                .collect();
            let edges: Vec<Edge> = (1..n)
                .map(|i| Edge {
                    from: OpId(rng.uniform_u64(0, i as u64) as u32),
                    to: OpId(i as u32),
                    bytes: 0,
                })
                .collect();
            let dag = Dag::new(ops, edges).unwrap();
            let mut skyline = vec![Partial::new(n)];
            let mut opt_id = 5000u32;
            for i in 0..n {
                // Expand one random container choice per partial.
                let mut next = Vec::new();
                for p in &skyline {
                    let used = p.container_free.len();
                    let c = rng.uniform_u64(0, used as u64 + 1) as usize;
                    let xfer = sched.op_xfer(&dag, OpId(i as u32));
                    let cand = sched.dataflow_cand(p, 0, &dag, OpId(i as u32), &xfer, c);
                    let q = sched.materialize(p, &cand);
                    assert_eq!(
                        cand.optional_count,
                        q.optional_count(),
                        "candidate preemption prediction drifted (round {round})"
                    );
                    next.push(q);
                }
                skyline = next;
                // Randomly offer an optional op between steps.
                if rng.uniform_u64(0, 2) == 0 {
                    let opt = OptionalOp {
                        op: OpId(opt_id),
                        duration: SimDuration::from_secs(1 + rng.uniform_u64(0, 90)),
                        build: BuildRef {
                            index: IndexId(opt_id),
                            part: 0,
                        },
                    };
                    opt_id += 1;
                    skyline = sched.offer_optional(&skyline, &opt);
                }
                for p in &skyline {
                    let schedule = p.clone().into_schedule();
                    assert_eq!(
                        p.optional_count(),
                        schedule.build_assignments().count(),
                        "optional accounting drifted (round {round})"
                    );
                    for (_, b) in &p.optional {
                        for a in p.dataflow.iter() {
                            assert!(
                                a.container != b.container || b.end <= a.start || a.end <= b.start,
                                "surviving build overlaps dataflow op (round {round})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_dag_yields_empty_schedule() {
        let sched = SkylineScheduler::new(cfg());
        let dag = Dag::new(vec![], vec![]).unwrap();
        let skyline = sched.schedule(&dag);
        assert_eq!(skyline.len(), 1);
        assert!(skyline[0].is_empty());
    }
}
