//! The skyline (Pareto) dataflow scheduler — Algorithm 4.
//!
//! Operators are assigned in dependency order; after each assignment the
//! set of non-dominated partial schedules over (execution time, monetary
//! cost) is recomputed. Between schedules equal in both objectives, the
//! one with the most sequential idle compute time wins (idle slots are
//! where index builds go); when optional build operators are offered
//! (§5.3.2, online interleaving), schedules with more operators win ties
//! instead.
//!
//! Two pragmatic bounds keep the exponential search tractable, both
//! standard for this scheduler family: candidate containers are the
//! already-used ones plus one fresh container (symmetry breaking), and
//! the skyline is capped at [`SchedulerConfig::max_skyline`] schedules
//! (evenly spaced along the time axis, extremes always kept).

use flowtune_common::{ContainerId, Money, OpId, SimDuration, SimTime};
use flowtune_dataflow::Dag;

use crate::schedule::{Assignment, BuildRef, Schedule};

/// Scheduler parameters.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Maximum containers a schedule may lease (Table 3: 100).
    pub max_containers: u32,
    /// Skyline width cap.
    pub max_skyline: usize,
    /// Billing quantum.
    pub quantum: SimDuration,
    /// Per-quantum VM price.
    pub vm_price: Money,
    /// Network bandwidth (bytes/s) for inter-container edge transfers.
    pub network_bandwidth: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_containers: 100,
            max_skyline: 24,
            quantum: SimDuration::from_secs(60),
            vm_price: Money::from_dollars(0.1),
            network_bandwidth: 1e9 / 8.0,
        }
    }
}

/// An optional build-index operator offered to the online interleaving
/// variant of the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct OptionalOp {
    /// Synthetic id (must not collide with dataflow op ids).
    pub op: OpId,
    /// Estimated build duration.
    pub duration: SimDuration,
    /// What it builds.
    pub build: BuildRef,
}

/// The skyline dataflow scheduler.
#[derive(Debug, Clone, Default)]
pub struct SkylineScheduler {
    /// Configuration.
    pub config: SchedulerConfig,
}

#[derive(Debug, Clone)]
struct Partial {
    assignments: Vec<Assignment>,
    /// Next free time per used container.
    container_free: Vec<SimTime>,
    /// Span of *dataflow* ops per container (billing basis).
    container_span: Vec<(SimTime, SimTime)>,
    /// Next free time per container counting optional (build) tail ops.
    opt_free: Vec<SimTime>,
    /// End time of each dataflow op assigned so far (ZERO = unassigned).
    op_end: Vec<SimTime>,
    /// Container of each dataflow op.
    op_container: Vec<u32>,
    makespan: SimDuration,
    optional_count: usize,
    /// Order-sensitive hash of the dataflow assignments; equal hashes =>
    /// identical dataflow skeletons (optional ops excluded).
    skeleton: u64,
}

impl Partial {
    fn new(n_ops: usize) -> Self {
        Partial {
            assignments: Vec::new(),
            container_free: Vec::new(),
            container_span: Vec::new(),
            opt_free: Vec::new(),
            op_end: vec![SimTime::ZERO; n_ops],
            op_container: vec![u32::MAX; n_ops],
            makespan: SimDuration::ZERO,
            optional_count: 0,
            skeleton: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn money_quanta(&self, quantum: SimDuration) -> u64 {
        // `e >= s` (not `>`): a container whose only ops are
        // zero-duration has span (s, s) but is still leased and billed
        // one quantum. The unused-container sentinel (MAX, ZERO) stays
        // excluded. `Schedule::leased_span` bills the same way, so the
        // search's money objective matches the reported money.
        self.container_span
            .iter()
            .filter(|(s, e)| e >= s)
            .map(|(s, e)| {
                let lease_start = s.quantum_floor(quantum);
                let lease_end = e.quantum_ceil(quantum).max(lease_start + quantum);
                (lease_end - lease_start).as_millis() / quantum.as_millis()
            })
            .sum()
    }

    /// Longest single idle gap across containers (tie-break criterion).
    fn longest_sequential_idle(&self, quantum: SimDuration) -> SimDuration {
        let mut best = SimDuration::ZERO;
        for (c, &(s, e)) in self.container_span.iter().enumerate() {
            if e <= s {
                continue;
            }
            let lease_start = s.quantum_floor(quantum);
            let lease_end = e.quantum_ceil(quantum).max(lease_start + quantum);
            // Dataflow assignments only: optional build ops are
            // preemptible filler and must not perturb the tie-break
            // (otherwise offering optional ops could steer the search to
            // a different dataflow skeleton and regress the front).
            let mut ops: Vec<(SimTime, SimTime)> = self
                .assignments
                .iter()
                .filter(|a| a.container.index() == c && a.build.is_none())
                .map(|a| (a.start, a.end))
                .collect();
            ops.sort_unstable();
            let mut cursor = lease_start;
            for (os, oe) in ops {
                if os > cursor {
                    best = best.max(os - cursor);
                }
                cursor = cursor.max(oe);
            }
            if lease_end > cursor {
                best = best.max(lease_end - cursor);
            }
        }
        best
    }
}

impl SkylineScheduler {
    /// Create a scheduler with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        SkylineScheduler { config }
    }

    /// Schedule a dataflow, returning the skyline of non-dominated
    /// schedules sorted by ascending execution time.
    pub fn schedule(&self, dag: &Dag) -> Vec<Schedule> {
        self.schedule_with_optional(dag, &[])
    }

    /// Schedule a dataflow while opportunistically placing optional
    /// build operators (the online interleaving algorithm of §5.3.2).
    /// Optional operators never delay dataflow operators in surviving
    /// schedules: a schedule where one did is dominated by its sibling
    /// without the operator.
    pub fn schedule_with_optional(&self, dag: &Dag, optional: &[OptionalOp]) -> Vec<Schedule> {
        if dag.is_empty() {
            return vec![Schedule::new()];
        }
        let order = dag.topo_order();
        let n = order.len();
        let mut skyline = vec![Partial::new(dag.len())];
        // Offer optional ops evenly across the assignment steps.
        let mut next_opt = 0usize;
        for (step, &op) in order.iter().enumerate() {
            // Expand every partial with every candidate container.
            let mut expanded: Vec<Partial> = Vec::new();
            for p in &skyline {
                let used = p.container_free.len();
                let candidates = if (used as u32) < self.config.max_containers {
                    used + 1
                } else {
                    used
                };
                for c in 0..candidates {
                    expanded.push(self.assign_dataflow_op(p, dag, op, c));
                }
            }
            let generated = expanded.len();
            skyline = self.reduce(expanded);
            flowtune_obs::obs_event!(
                "sched.step",
                step = step,
                op = op.0,
                candidates = generated,
                width = skyline.len(),
            );
            flowtune_obs::count("sched.steps", 1);
            flowtune_obs::count("sched.candidates", generated as u64);
            flowtune_obs::count(
                "sched.pruned",
                generated.saturating_sub(skyline.len()) as u64,
            );
            flowtune_obs::observe("sched.skyline_width", skyline.len() as f64);
            // Offer a proportional share of the optional queue.
            let opt_until = optional.len() * (step + 1) / n;
            while next_opt < opt_until {
                skyline = self.offer_optional(skyline, &optional[next_opt]);
                next_opt += 1;
            }
        }
        while next_opt < optional.len() {
            skyline = self.offer_optional(skyline, &optional[next_opt]);
            next_opt += 1;
        }
        let quantum = self.config.quantum;
        skyline.sort_by_key(|p| (p.makespan, p.money_quanta(quantum)));
        skyline
            .into_iter()
            .map(|p| Schedule::from_assignments(p.assignments))
            .collect()
    }

    fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.config.network_bandwidth)
    }

    fn assign_dataflow_op(&self, p: &Partial, dag: &Dag, op: OpId, c: usize) -> Partial {
        let mut q = p.clone();
        if c == q.container_free.len() {
            q.container_free.push(SimTime::ZERO);
            q.container_span.push((SimTime::MAX, SimTime::ZERO));
            q.opt_free.push(SimTime::ZERO);
        }
        // Data-ready: every predecessor done, plus transfer when remote.
        let mut ready = SimTime::ZERO;
        for &pred in dag.preds(op) {
            let mut t = q.op_end[pred.index()];
            if q.op_container[pred.index()] != c as u32 {
                t += self.transfer_time(dag.edge_bytes(pred, op));
            }
            ready = ready.max(t);
        }
        // Dataflow ops see only other dataflow ops: an optional build op
        // occupying the container is preempted (priority -1 in the
        // execution model), so it never delays the dataflow.
        let start = ready.max(q.container_free[c]);
        let end = start + dag.op(op).runtime;
        // Preempt optional tail ops that would overlap: drop the ones not
        // yet started, truncation of a running one is the simulator's
        // business (here the partial build contributes nothing).
        q.assignments
            .retain(|a| !(a.build.is_some() && a.container.index() == c && a.end > start));
        q.optional_count = q.assignments.iter().filter(|a| a.build.is_some()).count();
        q.assignments.push(Assignment {
            op,
            container: ContainerId(c as u32),
            start,
            end,
            build: None,
        });
        q.container_free[c] = end;
        q.opt_free[c] = q.opt_free[c].max(end);
        let (s, e) = q.container_span[c];
        q.container_span[c] = (s.min(start), e.max(end));
        q.op_end[op.index()] = end;
        q.op_container[op.index()] = c as u32;
        q.makespan = q.makespan.max(end - SimTime::ZERO);
        for word in [op.0 as u64, c as u64, start.as_millis()] {
            q.skeleton ^= word;
            q.skeleton = q.skeleton.wrapping_mul(0x1000_0000_01b3);
        }
        q
    }

    /// Union each partial with versions that place `opt` on some
    /// container's free tail inside the current leased span.
    fn offer_optional(&self, skyline: Vec<Partial>, opt: &OptionalOp) -> Vec<Partial> {
        let quantum = self.config.quantum;
        let mut out = Vec::with_capacity(skyline.len() * 2);
        for p in &skyline {
            for c in 0..p.container_free.len() {
                let (s, e) = p.container_span[c];
                if e <= s {
                    continue;
                }
                let lease_start = s.quantum_floor(quantum);
                let lease_end = e.quantum_ceil(quantum).max(lease_start + quantum);
                let start = p.opt_free[c].max(p.container_free[c]);
                let end = start + opt.duration;
                if end <= lease_end {
                    let mut q = p.clone();
                    q.assignments.push(Assignment {
                        op: opt.op,
                        container: ContainerId(c as u32),
                        start,
                        end,
                        build: Some(opt.build),
                    });
                    q.opt_free[c] = end;
                    q.optional_count += 1;
                    out.push(q);
                }
            }
        }
        out.extend(skyline);
        self.reduce(out)
    }

    /// Skyline reduction: collapse equal (time, money) groups with the
    /// tie-break (more operators, then most sequential idle), drop
    /// dominated partials, cap the width.
    fn reduce(&self, mut partials: Vec<Partial>) -> Vec<Partial> {
        let quantum = self.config.quantum;
        partials.sort_by_key(|p| (p.makespan, p.money_quanta(quantum)));
        // Collapse ties.
        let mut collapsed: Vec<Partial> = Vec::new();
        for p in partials {
            match collapsed.last_mut() {
                Some(last)
                    if last.makespan == p.makespan
                        && last.money_quanta(quantum) == p.money_quanta(quantum) =>
                {
                    // Primary tie-break: most sequential idle over the
                    // dataflow skeleton (as the plain scheduler). Only
                    // between skeleton-equivalent candidates does the
                    // optional-operator count decide (§5.3.2).
                    let p_idle = p.longest_sequential_idle(quantum);
                    let last_idle = last.longest_sequential_idle(quantum);
                    let better = match p_idle.cmp(&last_idle) {
                        std::cmp::Ordering::Greater => {
                            flowtune_obs::count("sched.tiebreak_idle", 1);
                            true
                        }
                        std::cmp::Ordering::Less => false,
                        // The operator count only decides between
                        // *identical* dataflow skeletons; across different
                        // skeletons we keep the incumbent exactly as the
                        // plain scheduler would, so offering optional ops
                        // never changes how the front evolves.
                        std::cmp::Ordering::Equal => {
                            let wins = p.skeleton == last.skeleton
                                && p.optional_count > last.optional_count;
                            if wins {
                                flowtune_obs::count("sched.tiebreak_optcount", 1);
                            }
                            wins
                        }
                    };
                    if better {
                        *last = p;
                    }
                }
                _ => collapsed.push(p),
            }
        }
        // Drop dominated: sorted by time asc, keep strictly decreasing money.
        let mut front: Vec<Partial> = Vec::new();
        let mut best_money = u64::MAX;
        for p in collapsed {
            let m = p.money_quanta(quantum);
            if m < best_money {
                best_money = m;
                front.push(p);
            }
        }
        // Cap width, keeping extremes and an even spread.
        if front.len() > self.config.max_skyline {
            let n = front.len();
            let keep: Vec<usize> = (0..self.config.max_skyline)
                .map(|i| i * (n - 1) / (self.config.max_skyline - 1))
                .collect();
            let mut kept = Vec::with_capacity(self.config.max_skyline);
            let mut front_iter = front.into_iter().enumerate();
            let mut keep_iter = keep.into_iter().peekable();
            for (i, p) in front_iter.by_ref() {
                if keep_iter.peek() == Some(&i) {
                    kept.push(p);
                    keep_iter.next();
                }
            }
            front = kept;
        }
        front
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::IndexId;
    use flowtune_common::SimRng;
    use flowtune_dataflow::{App, Edge, OpSpec};

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::default()
    }

    fn op(i: u32, secs: u64) -> OpSpec {
        OpSpec::new(OpId(i), format!("op{i}"), SimDuration::from_secs(secs))
    }

    /// Fork-join: 0 -> {1,2,3} -> 4.
    fn fork_join() -> Dag {
        Dag::new(
            vec![op(0, 10), op(1, 30), op(2, 30), op(3, 30), op(4, 10)],
            vec![
                Edge {
                    from: OpId(0),
                    to: OpId(1),
                    bytes: 0,
                },
                Edge {
                    from: OpId(0),
                    to: OpId(2),
                    bytes: 0,
                },
                Edge {
                    from: OpId(0),
                    to: OpId(3),
                    bytes: 0,
                },
                Edge {
                    from: OpId(1),
                    to: OpId(4),
                    bytes: 0,
                },
                Edge {
                    from: OpId(2),
                    to: OpId(4),
                    bytes: 0,
                },
                Edge {
                    from: OpId(3),
                    to: OpId(4),
                    bytes: 0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn skyline_schedules_are_valid() {
        let sched = SkylineScheduler::new(cfg());
        let dag = fork_join();
        let skyline = sched.schedule(&dag);
        assert!(!skyline.is_empty());
        for s in &skyline {
            s.validate(&dag).unwrap();
        }
    }

    #[test]
    fn skyline_is_nondominated_and_sorted() {
        let sched = SkylineScheduler::new(cfg());
        let skyline = sched.schedule(&fork_join());
        let pts: Vec<(SimDuration, u64)> = skyline
            .iter()
            .map(|s| (s.makespan(), s.leased_quanta(SimDuration::from_secs(60))))
            .collect();
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0, "time must strictly increase: {pts:?}");
            assert!(w[0].1 > w[1].1, "money must strictly decrease: {pts:?}");
        }
    }

    #[test]
    fn fork_join_extremes() {
        let sched = SkylineScheduler::new(cfg());
        let skyline = sched.schedule(&fork_join());
        // Fastest: 3 parallel branches -> 10 + 30 + 10 = 50 s.
        let fastest = skyline.first().unwrap();
        assert_eq!(fastest.makespan(), SimDuration::from_secs(50));
        // Cheapest end of the front: the partial-schedule skyline is a
        // heuristic (prefixes of the globally cheapest schedule can be
        // dominated mid-search), so assert a bound rather than the
        // 2-quanta optimum.
        let cheapest = skyline.last().unwrap();
        assert!(cheapest.leased_quanta(SimDuration::from_secs(60)) <= 3);
        assert!(
            cheapest.leased_quanta(SimDuration::from_secs(60))
                <= skyline[0].leased_quanta(SimDuration::from_secs(60))
        );
    }

    #[test]
    fn communication_cost_discourages_pointless_spread() {
        // 0 -> 1 with a huge edge: remote placement adds transfer time.
        let dag = Dag::new(
            vec![op(0, 10), op(1, 10)],
            vec![Edge {
                from: OpId(0),
                to: OpId(1),
                bytes: 5_000_000_000,
            }],
        )
        .unwrap();
        let sched = SkylineScheduler::new(cfg());
        let skyline = sched.schedule(&dag);
        // The fastest schedule co-locates: makespan exactly 20 s.
        assert_eq!(skyline[0].makespan(), SimDuration::from_secs(20));
        assert_eq!(skyline[0].containers().len(), 1);
    }

    #[test]
    fn respects_max_containers() {
        let mut c = cfg();
        c.max_containers = 2;
        let sched = SkylineScheduler::new(c);
        let skyline = sched.schedule(&fork_join());
        for s in &skyline {
            assert!(s.containers().len() <= 2);
        }
    }

    #[test]
    fn skyline_width_is_capped() {
        let mut c = cfg();
        c.max_skyline = 3;
        let sched = SkylineScheduler::new(c);
        let mut rng = SimRng::seed_from_u64(1);
        let dag = App::Montage.generate(60, &[], &mut rng);
        let skyline = sched.schedule(&dag);
        assert!(skyline.len() <= 3);
        for s in &skyline {
            s.validate(&dag).unwrap();
        }
    }

    #[test]
    fn scales_to_100_op_scientific_dataflows() {
        let sched = SkylineScheduler::new(cfg());
        let mut rng = SimRng::seed_from_u64(2);
        for app in App::ALL {
            let dag = app.generate(100, &[], &mut rng);
            let skyline = sched.schedule(&dag);
            assert!(!skyline.is_empty(), "{}", app.name());
            for s in &skyline {
                s.validate(&dag).unwrap();
                assert!(s.makespan() >= dag.critical_path(), "{}", app.name());
            }
        }
    }

    #[test]
    fn optional_ops_never_hurt_time_or_money() {
        let sched = SkylineScheduler::new(cfg());
        let dag = fork_join();
        let baseline = sched.schedule(&dag);
        let optional: Vec<OptionalOp> = (0..6)
            .map(|i| OptionalOp {
                op: OpId(1000 + i),
                duration: SimDuration::from_secs(8),
                build: BuildRef {
                    index: IndexId(i),
                    part: 0,
                },
            })
            .collect();
        let with_opt = sched.schedule_with_optional(&dag, &optional);
        // Pareto front must not regress.
        let q = SimDuration::from_secs(60);
        for b in &baseline {
            let covered = with_opt
                .iter()
                .any(|s| s.makespan() <= b.makespan() && s.leased_quanta(q) <= b.leased_quanta(q));
            assert!(covered, "optional ops regressed the skyline");
        }
        // And at least one schedule carries build ops.
        let built: usize = with_opt
            .iter()
            .map(|s| s.build_assignments().count())
            .max()
            .unwrap();
        assert!(built > 0, "no optional op was ever placed");
    }

    #[test]
    fn zero_duration_op_still_bills_one_quantum() {
        // Regression: the old `e > s` billing filter dropped containers
        // whose only assignments are zero-duration, yielding a leased
        // container with zero billed quanta.
        let sched = SkylineScheduler::new(cfg());
        let dag = Dag::new(vec![op(0, 0)], vec![]).unwrap();
        let p = sched.assign_dataflow_op(&Partial::new(1), &dag, OpId(0), 0);
        assert_eq!(p.container_free.len(), 1);
        assert_eq!(p.money_quanta(SimDuration::from_secs(60)), 1);
    }

    #[test]
    fn property_every_leased_container_is_billed() {
        // Random chains with zero-duration ops mixed in, assigned to
        // random containers: every container that received an op must
        // be billed at least one quantum, and the search's money
        // objective must agree with the reported leased quanta.
        let sched = SkylineScheduler::new(cfg());
        let quantum = SimDuration::from_secs(60);
        let mut rng = SimRng::seed_from_u64(0xB111);
        for _ in 0..100 {
            let n = 1 + rng.uniform_u64(1, 9) as usize;
            let ops: Vec<OpSpec> = (0..n)
                .map(|i| op(i as u32, rng.uniform_u64(0, 3)))
                .collect();
            let edges: Vec<Edge> = (1..n)
                .map(|i| Edge {
                    from: OpId(i as u32 - 1),
                    to: OpId(i as u32),
                    bytes: 0,
                })
                .collect();
            let dag = Dag::new(ops, edges).unwrap();
            let mut p = Partial::new(n);
            for i in 0..n {
                let used = p.container_free.len();
                let c = rng.uniform_u64(0, used as u64 + 1) as usize;
                p = sched.assign_dataflow_op(&p, &dag, OpId(i as u32), c);
            }
            let leased = p.container_free.len() as u64;
            assert!(
                p.money_quanta(quantum) >= leased,
                "container leased but unbilled: {} quanta for {leased} containers",
                p.money_quanta(quantum),
            );
            let schedule = Schedule::from_assignments(p.assignments.clone());
            assert_eq!(
                p.money_quanta(quantum),
                schedule.leased_quanta(quantum),
                "search money objective disagrees with reported billing"
            );
        }
    }

    #[test]
    fn empty_dag_yields_empty_schedule() {
        let sched = SkylineScheduler::new(cfg());
        let dag = Dag::new(vec![], vec![]).unwrap();
        let skyline = sched.schedule(&dag);
        assert_eq!(skyline.len(), 1);
        assert!(skyline[0].is_empty());
    }
}
