//! The schedule model.
//!
//! An execution schedule `Sd` is a set of assignments of operators to
//! containers (§3, "Dataflow and Index Management"). Assignments carry
//! estimated start/end times; the simulator later replays them against
//! (possibly perturbed) actual runtimes. Optional assignments are
//! build-index operators interleaved into idle slots — they must never
//! change the schedule's execution time or monetary cost.

use flowtune_common::{ContainerId, FlowtuneError, Money, OpId, Result, SimDuration, SimTime};
use flowtune_dataflow::Dag;

/// Identifies the index partition a build operator constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BuildRef {
    /// The index being built.
    pub index: flowtune_common::IndexId,
    /// The table-partition ordinal the index partition covers.
    pub part: u32,
}

/// One operator-to-container assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The dataflow operator (for optional assignments, a synthetic id
    /// unique among build ops of this schedule).
    pub op: OpId,
    /// Target container.
    pub container: ContainerId,
    /// Estimated start time.
    pub start: SimTime,
    /// Estimated end time.
    pub end: SimTime,
    /// `Some` when this is an optional build-index operator.
    pub build: Option<BuildRef>,
}

impl Assignment {
    /// True for interleaved build-index operators.
    pub fn is_optional(&self) -> bool {
        self.build.is_some()
    }

    /// Estimated duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A complete execution schedule.
///
/// Equality is exact over the assignment list — op ids, containers,
/// times, build refs, *and order* — which is what the scheduler
/// equivalence suite (DESIGN §5f) means by "byte-identical" schedules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    assignments: Vec<Assignment>,
}

impl Schedule {
    /// Empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Build from assignments.
    pub fn from_assignments(assignments: Vec<Assignment>) -> Self {
        Schedule { assignments }
    }

    /// All assignments (dataflow and build operators).
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Dataflow (non-optional) assignments only.
    pub fn dataflow_assignments(&self) -> impl Iterator<Item = &Assignment> {
        self.assignments.iter().filter(|a| !a.is_optional())
    }

    /// Build (optional) assignments only.
    pub fn build_assignments(&self) -> impl Iterator<Item = &Assignment> {
        self.assignments.iter().filter(|a| a.is_optional())
    }

    /// Append an assignment (no constraint checking; see
    /// [`Schedule::try_insert_build`] for the checked optional-op path).
    pub fn push(&mut self, a: Assignment) {
        self.assignments.push(a);
    }

    /// Number of assignments.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when no operator is assigned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Containers used by dataflow operators, ascending.
    pub fn containers(&self) -> Vec<ContainerId> {
        let mut cs: Vec<ContainerId> = self.dataflow_assignments().map(|a| a.container).collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }

    /// Assignments on one container, sorted by start time.
    pub fn on_container(&self, c: ContainerId) -> Vec<Assignment> {
        let mut v: Vec<Assignment> = self
            .assignments
            .iter()
            .filter(|a| a.container == c)
            .copied()
            .collect();
        v.sort_by_key(|a| (a.start, a.end));
        v
    }

    /// Execution time `td`: from the first dataflow operator's start to
    /// the last dataflow operator's finish. Optional build operators do
    /// not count — they only occupy already-leased idle time.
    pub fn makespan(&self) -> SimDuration {
        let (mut first, mut last) = (SimTime::MAX, SimTime::ZERO);
        for a in self.dataflow_assignments() {
            first = first.min(a.start);
            last = last.max(a.end);
        }
        if first == SimTime::MAX {
            SimDuration::ZERO
        } else {
            last - first
        }
    }

    /// The quanta leased for one container: from the quantum containing
    /// its first dataflow operator to the quantum boundary after its
    /// last. Resources are prepaid for whole quanta.
    pub fn leased_span(&self, c: ContainerId, quantum: SimDuration) -> Option<(SimTime, SimTime)> {
        let (mut first, mut last) = (SimTime::MAX, SimTime::ZERO);
        for a in self.dataflow_assignments().filter(|a| a.container == c) {
            first = first.min(a.start);
            last = last.max(a.end);
        }
        if first == SimTime::MAX {
            return None;
        }
        let lease_start = first.quantum_floor(quantum);
        let lease_end = last.quantum_ceil(quantum).max(lease_start + quantum);
        Some((lease_start, lease_end))
    }

    /// Total leased quanta across containers.
    pub fn leased_quanta(&self, quantum: SimDuration) -> u64 {
        self.containers()
            .into_iter()
            .filter_map(|c| self.leased_span(c, quantum))
            .map(|(s, e)| (e - s).as_millis() / quantum.as_millis())
            .sum()
    }

    /// Monetary cost `md`: leased quanta × per-quantum VM price.
    pub fn money(&self, quantum: SimDuration, vm_price: Money) -> Money {
        vm_price * self.leased_quanta(quantum) as i64
    }

    /// Try to insert an optional build operator. Fails unless the slot
    /// `[start, end)` on the container is inside the leased span and
    /// overlaps no existing assignment — the "do not affect dataflow
    /// execution time or money" constraint of the optimization problem.
    pub fn try_insert_build(
        &mut self,
        container: ContainerId,
        start: SimTime,
        end: SimTime,
        op: OpId,
        build: BuildRef,
        quantum: SimDuration,
    ) -> Result<()> {
        if end <= start {
            return Err(FlowtuneError::invalid_schedule("empty build slot"));
        }
        let (lease_start, lease_end) = self
            .leased_span(container, quantum)
            .ok_or_else(|| FlowtuneError::invalid_schedule("container not leased"))?;
        if start < lease_start || end > lease_end {
            return Err(FlowtuneError::invalid_schedule(format!(
                "build op outside leased span on {container}"
            )));
        }
        for a in self.assignments.iter().filter(|a| a.container == container) {
            if start < a.end && a.start < end {
                return Err(FlowtuneError::invalid_schedule(format!(
                    "build op overlaps {} on {container}",
                    a.op
                )));
            }
        }
        self.assignments.push(Assignment {
            op,
            container,
            start,
            end,
            build: Some(build),
        });
        Ok(())
    }

    /// Validate a schedule against its dataflow: every operator assigned
    /// exactly once, no per-container overlap, and every operator starts
    /// no earlier than each predecessor's end.
    pub fn validate(&self, dag: &Dag) -> Result<()> {
        let mut seen = vec![false; dag.len()];
        for a in self.dataflow_assignments() {
            let i = a.op.index();
            if i >= dag.len() {
                return Err(FlowtuneError::invalid_schedule(format!(
                    "unknown op {}",
                    a.op
                )));
            }
            if seen[i] {
                return Err(FlowtuneError::invalid_schedule(format!(
                    "op {} assigned twice",
                    a.op
                )));
            }
            seen[i] = true;
        }
        if !seen.iter().all(|s| *s) {
            return Err(FlowtuneError::invalid_schedule(
                "not all operators assigned",
            ));
        }
        // Per-container overlap (all assignments, optional included).
        for c in self
            .assignments
            .iter()
            .map(|a| a.container)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let timeline = self.on_container(c);
            for w in timeline.windows(2) {
                if w[1].start < w[0].end {
                    return Err(FlowtuneError::invalid_schedule(format!(
                        "overlap on {c}: {} and {}",
                        w[0].op, w[1].op
                    )));
                }
            }
        }
        // Dependency order.
        let mut end_of = vec![SimTime::ZERO; dag.len()];
        for a in self.dataflow_assignments() {
            end_of[a.op.index()] = a.end;
        }
        for a in self.dataflow_assignments() {
            for p in dag.preds(a.op) {
                if a.start < end_of[p.index()] {
                    return Err(FlowtuneError::invalid_schedule(format!(
                        "{} starts before predecessor {} ends",
                        a.op, p
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::IndexId;
    use flowtune_dataflow::{Edge, OpSpec};

    const Q: SimDuration = SimDuration::from_secs(60);

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn chain_dag() -> Dag {
        // 0 -> 1 -> 2
        Dag::new(
            vec![
                OpSpec::new(OpId(0), "a", SimDuration::from_secs(10)),
                OpSpec::new(OpId(1), "b", SimDuration::from_secs(20)),
                OpSpec::new(OpId(2), "c", SimDuration::from_secs(10)),
            ],
            vec![
                Edge {
                    from: OpId(0),
                    to: OpId(1),
                    bytes: 0,
                },
                Edge {
                    from: OpId(1),
                    to: OpId(2),
                    bytes: 0,
                },
            ],
        )
        .unwrap()
    }

    fn asg(op: u32, c: u32, s: u64, e: u64) -> Assignment {
        Assignment {
            op: OpId(op),
            container: ContainerId(c),
            start: secs(s),
            end: secs(e),
            build: None,
        }
    }

    fn valid_schedule() -> Schedule {
        Schedule::from_assignments(vec![asg(0, 0, 0, 10), asg(1, 0, 10, 30), asg(2, 1, 30, 40)])
    }

    #[test]
    fn makespan_and_money() {
        let s = valid_schedule();
        assert_eq!(s.makespan(), SimDuration::from_secs(40));
        // c0 leased quantum [0,60); c1 first op at 30 -> leased [0,60).
        assert_eq!(s.leased_quanta(Q), 2);
        assert_eq!(
            s.money(Q, Money::from_dollars(0.1)),
            Money::from_dollars(0.2)
        );
        assert_eq!(s.containers(), vec![ContainerId(0), ContainerId(1)]);
    }

    #[test]
    fn validation_accepts_good_schedule() {
        valid_schedule().validate(&chain_dag()).unwrap();
    }

    #[test]
    fn validation_rejects_bad_schedules() {
        let dag = chain_dag();
        // Missing op.
        let s = Schedule::from_assignments(vec![asg(0, 0, 0, 10)]);
        assert!(s.validate(&dag).is_err());
        // Overlap.
        let s =
            Schedule::from_assignments(vec![asg(0, 0, 0, 10), asg(1, 0, 5, 30), asg(2, 1, 30, 40)]);
        assert!(s
            .validate(&dag)
            .unwrap_err()
            .to_string()
            .contains("overlap"));
        // Dependency violation.
        let s =
            Schedule::from_assignments(vec![asg(0, 0, 0, 10), asg(1, 1, 5, 25), asg(2, 1, 25, 35)]);
        assert!(s
            .validate(&dag)
            .unwrap_err()
            .to_string()
            .contains("predecessor"));
        // Duplicate assignment.
        let s = Schedule::from_assignments(vec![
            asg(0, 0, 0, 10),
            asg(0, 1, 0, 10),
            asg(1, 0, 10, 30),
            asg(2, 1, 30, 40),
        ]);
        assert!(s.validate(&dag).unwrap_err().to_string().contains("twice"));
    }

    #[test]
    fn build_op_insertion_respects_constraints() {
        let mut s = valid_schedule();
        let build = BuildRef {
            index: IndexId(0),
            part: 0,
        };
        // Fits in c0's idle tail [30, 60).
        s.try_insert_build(ContainerId(0), secs(30), secs(50), OpId(100), build, Q)
            .unwrap();
        // Money and makespan unchanged.
        assert_eq!(s.makespan(), SimDuration::from_secs(40));
        assert_eq!(s.leased_quanta(Q), 2);
        // Overlap with the build op itself is rejected.
        let err = s
            .try_insert_build(ContainerId(0), secs(45), secs(55), OpId(101), build, Q)
            .unwrap_err();
        assert!(err.to_string().contains("overlaps"));
        // Outside the leased span is rejected.
        let err = s
            .try_insert_build(ContainerId(0), secs(55), secs(70), OpId(102), build, Q)
            .unwrap_err();
        assert!(err.to_string().contains("leased"));
        // Unleased container is rejected.
        let err = s
            .try_insert_build(ContainerId(7), secs(0), secs(10), OpId(103), build, Q)
            .unwrap_err();
        assert!(err.to_string().contains("not leased"));
    }

    #[test]
    fn build_ops_do_not_count_towards_makespan() {
        let mut s = valid_schedule();
        let build = BuildRef {
            index: IndexId(1),
            part: 2,
        };
        s.try_insert_build(ContainerId(1), secs(40), secs(59), OpId(100), build, Q)
            .unwrap();
        assert_eq!(s.makespan(), SimDuration::from_secs(40));
        assert_eq!(s.build_assignments().count(), 1);
        assert_eq!(s.dataflow_assignments().count(), 3);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new();
        assert_eq!(s.makespan(), SimDuration::ZERO);
        assert_eq!(s.leased_quanta(Q), 0);
        assert!(s.containers().is_empty());
    }
}
