//! Heterogeneous VM pools — the paper's §7 future work ("evaluate the
//! benefits of index management for scenarios with heterogeneous cloud
//! resources") and §3's remark that "the scheduler can consider slots
//! at different VM types".
//!
//! [`HeterogeneousScheduler`] generalises the skyline search: each
//! candidate assignment may open a fresh container of *any* VM type;
//! operator runtimes scale with the type's speed factor and leased
//! quanta are billed at the type's price. The result is a
//! [`HeteroSchedule`] — a plain [`Schedule`] plus the per-container
//! type assignment, with its own billing.

use flowtune_common::{ContainerId, Money, OpId, SimDuration, SimTime};
use flowtune_dataflow::Dag;

use crate::schedule::{Assignment, Schedule};

/// One VM type on offer.
#[derive(Debug, Clone, PartialEq)]
pub struct VmType {
    /// Display name (e.g. "standard", "fast", "eco").
    pub name: String,
    /// Relative CPU speed; operator runtime = base / speed.
    pub speed: f64,
    /// Price per leased quantum.
    pub price_per_quantum: Money,
}

impl VmType {
    /// Construct a type.
    pub fn new(name: impl Into<String>, speed: f64, price_per_quantum: Money) -> Self {
        assert!(speed > 0.0, "VM speed must be positive");
        VmType {
            name: name.into(),
            speed,
            price_per_quantum,
        }
    }

    /// The paper's homogeneous container (speed 1, $0.1/quantum).
    pub fn standard() -> Self {
        VmType::new("standard", 1.0, Money::from_dollars(0.1))
    }
}

/// A schedule over a typed container pool.
#[derive(Debug, Clone)]
pub struct HeteroSchedule {
    /// The operator assignments (container ids index into
    /// `container_types`).
    pub schedule: Schedule,
    /// VM-type index (into the scheduler's type list) per container.
    pub container_types: Vec<usize>,
    /// The type list the indexes refer to.
    pub types: Vec<VmType>,
}

impl HeteroSchedule {
    /// Execution time (same definition as the homogeneous schedule).
    pub fn makespan(&self) -> SimDuration {
        self.schedule.makespan()
    }

    /// Monetary cost: leased quanta per container, billed at the
    /// container's type price.
    pub fn money(&self, quantum: SimDuration) -> Money {
        self.schedule
            .containers()
            .into_iter()
            .filter_map(|c| {
                let (s, e) = self.schedule.leased_span(c, quantum)?;
                let quanta = ((e - s).as_millis() / quantum.as_millis()) as i64;
                let ty = &self.types[self.container_types[c.index()]];
                Some(ty.price_per_quantum * quanta)
            })
            .sum()
    }

    /// The VM type of one container.
    pub fn type_of(&self, c: ContainerId) -> &VmType {
        &self.types[self.container_types[c.index()]]
    }
}

/// Skyline scheduler over a heterogeneous pool.
#[derive(Debug, Clone)]
pub struct HeterogeneousScheduler {
    /// Available VM types (at least one).
    pub types: Vec<VmType>,
    /// Maximum total containers.
    pub max_containers: u32,
    /// Skyline width cap.
    pub max_skyline: usize,
    /// Billing quantum.
    pub quantum: SimDuration,
    /// Network bandwidth for inter-container transfers (bytes/s).
    pub network_bandwidth: f64,
}

impl HeterogeneousScheduler {
    /// Scheduler over the given types with the paper's other defaults.
    pub fn new(types: Vec<VmType>) -> Self {
        assert!(!types.is_empty(), "need at least one VM type");
        HeterogeneousScheduler {
            types,
            max_containers: 100,
            max_skyline: 12,
            quantum: SimDuration::from_secs(60),
            network_bandwidth: 1e9 / 8.0,
        }
    }

    /// Skyline of typed schedules, sorted by ascending execution time.
    pub fn schedule(&self, dag: &Dag) -> Vec<HeteroSchedule> {
        if dag.is_empty() {
            return vec![HeteroSchedule {
                schedule: Schedule::new(),
                container_types: Vec::new(),
                types: self.types.clone(),
            }];
        }
        let mut skyline = vec![Partial::new(dag.len())];
        for op in dag.topo_order() {
            let mut expanded = Vec::new();
            for p in &skyline {
                // Existing containers plus one fresh container per type.
                for c in 0..p.container_type.len() {
                    expanded.push(self.assign(p, dag, op, c, p.container_type[c]));
                }
                if (p.container_type.len() as u32) < self.max_containers {
                    for ty in 0..self.types.len() {
                        expanded.push(self.assign(p, dag, op, p.container_type.len(), ty));
                    }
                }
            }
            skyline = self.reduce(expanded);
        }
        skyline.sort_by(|a, b| {
            a.makespan
                .cmp(&b.makespan)
                .then(a.money(self).cmp(&b.money(self)))
        });
        skyline
            .into_iter()
            .map(|p| HeteroSchedule {
                schedule: Schedule::from_assignments(p.assignments),
                container_types: p.container_type,
                types: self.types.clone(),
            })
            .collect()
    }

    fn assign(&self, p: &Partial, dag: &Dag, op: OpId, c: usize, ty: usize) -> Partial {
        let mut q = p.clone();
        if c == q.container_type.len() {
            q.container_type.push(ty);
            q.container_free.push(SimTime::ZERO);
            q.container_span.push((SimTime::MAX, SimTime::ZERO));
        }
        let mut ready = SimTime::ZERO;
        for &pred in dag.preds(op) {
            let mut t = q.op_end[pred.index()];
            if q.op_container[pred.index()] != c as u32 {
                t += SimDuration::from_secs_f64(
                    dag.edge_bytes(pred, op) as f64 / self.network_bandwidth,
                );
            }
            ready = ready.max(t);
        }
        let start = ready.max(q.container_free[c]);
        let runtime = dag.op(op).runtime.mul_f64(1.0 / self.types[ty].speed);
        let end = start + runtime;
        q.assignments.push(Assignment {
            op,
            container: ContainerId(c as u32),
            start,
            end,
            build: None,
        });
        q.container_free[c] = end;
        let (s, e) = q.container_span[c];
        q.container_span[c] = (s.min(start), e.max(end));
        q.op_end[op.index()] = end;
        q.op_container[op.index()] = c as u32;
        q.makespan = q.makespan.max(end - SimTime::ZERO);
        q
    }

    fn reduce(&self, mut partials: Vec<Partial>) -> Vec<Partial> {
        partials.sort_by(|a, b| {
            a.makespan
                .cmp(&b.makespan)
                .then(a.money(self).cmp(&b.money(self)))
        });
        partials.dedup_by(|b, a| a.makespan == b.makespan && a.money(self) == b.money(self));
        let mut front: Vec<Partial> = Vec::new();
        let mut best_money = Money::from_micros(i64::MAX);
        for p in partials {
            let m = p.money(self);
            if m < best_money {
                best_money = m;
                front.push(p);
            }
        }
        if front.len() > self.max_skyline {
            let n = front.len();
            let keep: Vec<usize> = (0..self.max_skyline)
                .map(|i| i * (n - 1) / (self.max_skyline - 1))
                .collect();
            front = front
                .into_iter()
                .enumerate()
                .filter(|(i, _)| keep.contains(i))
                .map(|(_, p)| p)
                .collect();
        }
        front
    }
}

#[derive(Debug, Clone)]
struct Partial {
    assignments: Vec<Assignment>,
    container_type: Vec<usize>,
    container_free: Vec<SimTime>,
    container_span: Vec<(SimTime, SimTime)>,
    op_end: Vec<SimTime>,
    op_container: Vec<u32>,
    makespan: SimDuration,
}

impl Partial {
    fn new(n_ops: usize) -> Self {
        Partial {
            assignments: Vec::new(),
            container_type: Vec::new(),
            container_free: Vec::new(),
            container_span: Vec::new(),
            op_end: vec![SimTime::ZERO; n_ops],
            op_container: vec![u32::MAX; n_ops],
            makespan: SimDuration::ZERO,
        }
    }

    fn money(&self, sched: &HeterogeneousScheduler) -> Money {
        let quantum = sched.quantum;
        self.container_span
            .iter()
            .zip(&self.container_type)
            .filter(|((s, e), _)| e > s)
            .map(|((s, e), &ty)| {
                let ls = s.quantum_floor(quantum);
                let le = e.quantum_ceil(quantum).max(ls + quantum);
                let quanta = ((le - ls).as_millis() / quantum.as_millis()) as i64;
                sched.types[ty].price_per_quantum * quanta
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;
    use flowtune_dataflow::{App, Edge, OpSpec};

    fn mixed_pool() -> Vec<VmType> {
        vec![
            VmType::new("eco", 0.5, Money::from_dollars(0.04)),
            VmType::standard(),
            VmType::new("fast", 2.0, Money::from_dollars(0.25)),
        ]
    }

    fn chain(n: u32, secs: u64) -> Dag {
        let ops = (0..n)
            .map(|i| OpSpec::new(OpId(i), format!("op{i}"), SimDuration::from_secs(secs)))
            .collect();
        let edges = (1..n)
            .map(|i| Edge {
                from: OpId(i - 1),
                to: OpId(i),
                bytes: 0,
            })
            .collect();
        Dag::new(ops, edges).unwrap()
    }

    #[test]
    fn fast_type_shortens_the_fast_end_of_the_front() {
        // A pure chain: only a faster VM can beat the critical path.
        let dag = chain(5, 30);
        let homo = HeterogeneousScheduler::new(vec![VmType::standard()]);
        let hetero = HeterogeneousScheduler::new(mixed_pool());
        let fastest_homo = homo.schedule(&dag).remove(0);
        let fastest_hetero = hetero.schedule(&dag).remove(0);
        assert_eq!(fastest_homo.makespan(), SimDuration::from_secs(150));
        assert_eq!(fastest_hetero.makespan(), SimDuration::from_secs(75));
        assert_eq!(fastest_hetero.type_of(ContainerId(0)).name, "fast");
    }

    #[test]
    fn eco_type_cheapens_the_cheap_end_of_the_front() {
        let dag = chain(4, 20);
        let homo = HeterogeneousScheduler::new(vec![VmType::standard()]);
        let hetero = HeterogeneousScheduler::new(mixed_pool());
        let q = SimDuration::from_secs(60);
        let cheapest_homo = homo.schedule(&dag).pop().unwrap().money(q);
        let cheapest_hetero = hetero.schedule(&dag).pop().unwrap().money(q);
        assert!(
            cheapest_hetero < cheapest_homo,
            "hetero {cheapest_hetero} >= homo {cheapest_homo}"
        );
    }

    #[test]
    fn single_standard_type_matches_homogeneous_billing() {
        let mut rng = SimRng::seed_from_u64(4);
        let dag = App::Montage.generate(60, &[], &mut rng);
        let hetero = HeterogeneousScheduler::new(vec![VmType::standard()]);
        let q = SimDuration::from_secs(60);
        for hs in hetero.schedule(&dag) {
            hs.schedule.validate(&dag).unwrap();
            // Money via typed billing equals the homogeneous formula.
            assert_eq!(hs.money(q), hs.schedule.money(q, Money::from_dollars(0.1)));
        }
    }

    #[test]
    fn typed_fronts_are_valid_and_pareto() {
        let mut rng = SimRng::seed_from_u64(5);
        let dag = App::Cybershake.generate(60, &[], &mut rng);
        let hetero = HeterogeneousScheduler::new(mixed_pool());
        let q = SimDuration::from_secs(60);
        let front = hetero.schedule(&dag);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].makespan() < w[1].makespan());
            assert!(w[0].money(q) > w[1].money(q));
        }
        for hs in &front {
            hs.schedule.validate(&dag).unwrap();
            assert_eq!(hs.container_types.len(), hs.schedule.containers().len());
        }
    }

    #[test]
    fn empty_dag() {
        let hetero = HeterogeneousScheduler::new(mixed_pool());
        let front = hetero.schedule(&Dag::new(vec![], vec![]).unwrap());
        assert_eq!(front.len(), 1);
        assert!(front[0].schedule.is_empty());
    }
}
