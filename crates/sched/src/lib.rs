//! # flowtune-sched
//!
//! Dataflow scheduling: the schedule model (assignments of operators to
//! containers with quantum-granular billing), idle-slot/fragmentation
//! analysis, the **skyline (Pareto) dataflow scheduler** of §5.3.1
//! (Algorithm 4, after Chronis et al.) and the **online load-balance**
//! baseline scheduler the paper compares against in §6.3.
//!
//! A schedule's two objectives are its **execution time** (first
//! operator start to last operator finish) and **monetary cost** (whole
//! leased quanta across containers). The skyline scheduler maintains the
//! set of non-dominated partial schedules as it assigns operators in
//! dependency order; ties on both objectives are broken towards the
//! schedule with the *most sequential idle time*, because long idle
//! slots are where index builds go.
//!
//! The skyline search keeps its objectives (`money`, the idle
//! tie-break, the skeleton hash) as incrementally maintained caches and
//! expands candidates as cheap deltas, materializing full partial
//! schedules only for reduction survivors (DESIGN §5f). The
//! pre-optimization implementation is retained in [`reference`]
//! (`cfg(test)` or the `reference` cargo feature) and golden tests pin
//! the two byte-identical.

#[cfg(test)]
mod equivalence_tests;
pub mod hetero;
pub mod online_lb;
#[cfg(any(test, feature = "reference"))]
pub mod reference;
pub mod schedule;
pub mod skyline;
pub mod slots;

pub use hetero::{HeteroSchedule, HeterogeneousScheduler, VmType};
pub use online_lb::OnlineLoadBalanceScheduler;
pub use schedule::{Assignment, BuildRef, Schedule};
pub use skyline::{OptionalOp, SchedulerConfig, SkylineScheduler};
pub use slots::{idle_slots, total_fragmentation, IdleSlot};
