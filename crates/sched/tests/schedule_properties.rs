//! Property tests over random DAGs: every scheduler output is valid,
//! billing is consistent, and the Pareto front is well-formed.
//!
//! Inputs are generated from a seeded `SimRng`, so every case is
//! reproducible: a failure report's seed pins the exact DAG.

// Test helpers assert freely (clippy's in-test detection misses
// non-#[test] helper fns in integration tests).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use flowtune_common::{Money, OpId, SimDuration, SimRng};
use flowtune_dataflow::{App, Dag, Edge, OpSpec};
use flowtune_sched::{
    idle_slots, total_fragmentation, OnlineLoadBalanceScheduler, SchedulerConfig, SkylineScheduler,
};

const Q: SimDuration = SimDuration::from_secs(60);

/// Random layered DAG: `widths` defines ops per layer; each op gets a
/// random subset of the previous layer as predecessors.
fn layered_dag(widths: &[u8], runtimes: &[u16], edge_choices: &[u8]) -> Dag {
    let mut ops = Vec::new();
    let mut edges = Vec::new();
    let mut prev_layer: Vec<OpId> = Vec::new();
    let mut rt = runtimes.iter().cycle();
    let mut ec = edge_choices.iter().cycle();
    for &w in widths {
        let w = (w % 6) + 1;
        let mut layer = Vec::new();
        for _ in 0..w {
            let id = OpId::from_index(ops.len());
            let secs = (*rt.next().unwrap() % 300) as u64 + 1;
            ops.push(OpSpec::new(
                id,
                format!("op{}", id.0),
                SimDuration::from_secs(secs),
            ));
            // Connect to 1..=2 predecessors from the previous layer.
            if !prev_layer.is_empty() {
                let n_preds = (*ec.next().unwrap() % 2) as usize + 1;
                for k in 0..n_preds.min(prev_layer.len()) {
                    let p = prev_layer[(*ec.next().unwrap() as usize + k) % prev_layer.len()];
                    let bytes = (*ec.next().unwrap() as u64) * 1_000_000;
                    if !edges.iter().any(|e: &Edge| e.from == p && e.to == id) {
                        edges.push(Edge {
                            from: p,
                            to: id,
                            bytes,
                        });
                    }
                }
            }
            layer.push(id);
        }
        prev_layer = layer;
    }
    Dag::new(ops, edges).expect("layered construction is acyclic")
}

fn random_u8_vec(rng: &mut SimRng, lo: u64, hi: u64) -> Vec<u8> {
    let n = rng.uniform_u64(lo, hi) as usize;
    (0..n).map(|_| rng.uniform_u64(0, 256) as u8).collect()
}

fn random_u16_vec(rng: &mut SimRng, lo: u64, hi: u64, max: u64) -> Vec<u16> {
    let n = rng.uniform_u64(lo, hi) as usize;
    (0..n).map(|_| rng.uniform_u64(1, max + 1) as u16).collect()
}

#[test]
fn skyline_front_is_valid_and_sorted() {
    let mut rng = SimRng::seed_from_u64(0x5CED1);
    for _ in 0..24 {
        let widths = random_u8_vec(&mut rng, 2, 6);
        let runtimes = random_u16_vec(&mut rng, 4, 12, 500);
        let edge_choices = random_u8_vec(&mut rng, 8, 32);
        let dag = layered_dag(&widths, &runtimes, &edge_choices);
        let scheduler = SkylineScheduler::new(SchedulerConfig {
            max_skyline: 6,
            ..Default::default()
        });
        let front = scheduler.schedule(&dag);
        assert!(!front.is_empty());
        let mut last: Option<(SimDuration, u64)> = None;
        for s in &front {
            s.validate(&dag).unwrap();
            // Makespan can never beat the critical path.
            assert!(s.makespan() >= dag.critical_path());
            // Billing covers at least the busy time.
            let busy: SimDuration = dag.ops().iter().map(|o| o.runtime).sum();
            let leased = Q * s.leased_quanta(Q);
            assert!(leased >= busy.saturating_sub(SimDuration::from_millis(1)));
            // Front strictly improves money as time grows.
            let point = (s.makespan(), s.leased_quanta(Q));
            if let Some(prev) = last {
                assert!(point.0 > prev.0, "front must be time-sorted");
                assert!(point.1 < prev.1, "front must be money-improving");
            }
            last = Some(point);
        }
    }
}

#[test]
fn fragmentation_is_lease_minus_busy() {
    let mut rng = SimRng::seed_from_u64(0x5CED2);
    for _ in 0..24 {
        let widths = random_u8_vec(&mut rng, 2, 5);
        let runtimes = random_u16_vec(&mut rng, 4, 10, 400);
        let edge_choices = random_u8_vec(&mut rng, 8, 24);
        let dag = layered_dag(&widths, &runtimes, &edge_choices);
        let schedule = OnlineLoadBalanceScheduler::default().schedule(&dag);
        let leased_ms: u64 = schedule.leased_quanta(Q) * Q.as_millis();
        let busy_ms: u64 = dag.ops().iter().map(|o| o.runtime.as_millis()).sum();
        let frag = total_fragmentation(&schedule, Q).as_millis();
        assert_eq!(leased_ms, busy_ms + frag, "lease = busy + idle");
        // Idle slots never overlap operators.
        for slot in idle_slots(&schedule, Q) {
            for a in schedule.on_container(slot.container) {
                assert!(a.end <= slot.start || a.start >= slot.end);
            }
        }
    }
}

#[test]
fn both_schedulers_agree_on_work_conservation() {
    for seed in (0u64..1000).step_by(40) {
        let mut rng = SimRng::seed_from_u64(seed);
        let app = *rng.choose(&App::ALL);
        let dag = app.generate(40, &[], &mut rng);
        let lb = OnlineLoadBalanceScheduler::default().schedule(&dag);
        let sky = SkylineScheduler::new(SchedulerConfig {
            max_skyline: 4,
            ..Default::default()
        })
        .schedule(&dag)
        .remove(0);
        for s in [&lb, &sky] {
            s.validate(&dag).unwrap();
            assert_eq!(s.dataflow_assignments().count(), dag.len());
            assert!(s.money(Q, Money::from_dollars(0.1)) > Money::ZERO);
        }
        // The skyline's fastest schedule is never slower than load
        // balance by more than the communication it saves... just check
        // both respect the critical path.
        assert!(lb.makespan() >= dag.critical_path());
        assert!(sky.makespan() >= dag.critical_path());
    }
}
