//! The structured event log.
//!
//! An [`Event`] is one record of the trace: a sim-time stamp, a stable
//! event kind (dot-separated, `layer.what`), and an ordered list of
//! `(key, value)` fields. Rendering is a hand-rolled JSON writer so the
//! workspace stays zero-dependency (DESIGN §7) and the byte output is a
//! pure function of the recorded values: keys keep insertion order,
//! floats render via Rust's shortest-round-trip formatter, and nothing
//! ever consults a wall clock or a hash map.

use std::fmt::Write as _;

/// A field value: the closed set of types events may carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (ids, counts, milliseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (fractions, gains, quanta). Non-finite values render as
    /// JSON `null`.
    F64(f64),
    /// String (application names, labels).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Sim-time stamp in milliseconds (the recorder's current clock).
    pub at_ms: u64,
    /// Stable kind, `layer.what` (e.g. `sched.step`, `cloud.exec`).
    pub kind: &'static str,
    /// Ordered fields; order is part of the schema and of the bytes.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Render as one JSON object: `{"t":…,"kind":…,<fields…>}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"t\":");
        // Writing to a String cannot fail; ignore the fmt plumbing.
        let _ = write!(out, "{}", self.at_ms);
        out.push_str(",\"kind\":");
        push_json_str(&mut out, self.kind);
        for (key, value) in &self.fields {
            out.push(',');
            push_json_str(&mut out, key);
            out.push(':');
            push_json_value(&mut out, value);
        }
        out.push('}');
        out
    }
}

/// Append a JSON value.
pub(crate) fn push_json_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => push_json_f64(out, *v),
        Value::Str(s) => push_json_str(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Append a float. Finite values use the shortest representation that
/// round-trips (`{:?}`), which is platform-independent; NaN/±inf have no
/// JSON spelling and become `null`.
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Append a JSON string literal with escaping.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_renders_stable_json() {
        let e = Event {
            at_ms: 61_000,
            kind: "sched.step",
            fields: vec![
                ("step", Value::from(3u64)),
                ("width", Value::from(8usize)),
                ("app", Value::from("Montage")),
                ("frac", Value::from(0.5f64)),
                ("ok", Value::from(true)),
            ],
        };
        assert_eq!(
            e.to_json(),
            r#"{"t":61000,"kind":"sched.step","step":3,"width":8,"app":"Montage","frac":0.5,"ok":true}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nonfinite_floats_are_null() {
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        out.push(',');
        push_json_f64(&mut out, f64::INFINITY);
        out.push(',');
        push_json_f64(&mut out, 1.25e-7);
        assert_eq!(out, "null,null,1.25e-7");
    }
}
