//! The thread-local recorder and its install/emit API.
//!
//! The simulation is single-threaded, so a thread-local sink lets every
//! layer (scheduler, interleaver, simulator, tuner) record events and
//! metrics without threading a handle through every function signature.
//! The owner of the run (CLI, bench binary, or test) calls [`install`],
//! drives the run, then calls [`uninstall`] to take the recorder back
//! and write its files. Under `cargo test`, per-thread storage isolates
//! concurrently running tests from one another.
//!
//! When nothing is installed, every recording call is a branch on a
//! thread-local `Cell<bool>` that is always `false`; with the `trace`
//! cargo feature disabled, [`is_enabled`] is a constant `false` and the
//! call sites are removed entirely by dead-code elimination.

use flowtune_common::SimTime;

use crate::event::{Event, Value};
use crate::metrics::MetricsRegistry;

/// A run's collected observability data.
#[derive(Debug, Default)]
pub struct Recorder {
    now_ms: u64,
    events: Vec<Event>,
    metrics: MetricsRegistry,
}

impl Recorder {
    /// Fresh empty recorder with the clock at sim time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Render all events as JSONL (one event per line, trailing
    /// newline when non-empty).
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Render the metrics registry as deterministic JSON.
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json()
    }
}

#[cfg(feature = "trace")]
mod active {
    use super::*;
    use std::cell::{Cell, RefCell};

    thread_local! {
        static ENABLED: Cell<bool> = const { Cell::new(false) };
        static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
    }

    /// Whether a recorder is installed on this thread.
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.with(Cell::get)
    }

    /// Install a fresh recorder on this thread, replacing (and
    /// discarding) any previous one.
    pub fn install() {
        RECORDER.with(|r| *r.borrow_mut() = Some(Recorder::new()));
        ENABLED.with(|e| e.set(true));
    }

    /// Take the recorder off this thread, disabling recording.
    pub fn uninstall() -> Option<Recorder> {
        ENABLED.with(|e| e.set(false));
        RECORDER.with(|r| r.borrow_mut().take())
    }

    fn with_recorder(f: impl FnOnce(&mut Recorder)) {
        RECORDER.with(|r| {
            if let Some(rec) = r.borrow_mut().as_mut() {
                f(rec);
            }
        });
    }

    /// Set the sim-time clock used to stamp subsequent events.
    pub fn set_now(now: SimTime) {
        if is_enabled() {
            with_recorder(|rec| rec.now_ms = now.as_millis());
        }
    }

    /// Record one event at the current sim time.
    pub fn emit(kind: &'static str, fields: Vec<(&'static str, Value)>) {
        if is_enabled() {
            with_recorder(|rec| {
                let at_ms = rec.now_ms;
                rec.events.push(Event {
                    at_ms,
                    kind,
                    fields,
                });
            });
        }
    }

    /// Add `delta` to a named counter.
    pub fn count(name: &'static str, delta: u64) {
        if is_enabled() {
            with_recorder(|rec| rec.metrics.count(name, delta));
        }
    }

    /// Set a named gauge.
    pub fn gauge(name: &'static str, value: f64) {
        if is_enabled() {
            with_recorder(|rec| rec.metrics.gauge(name, value));
        }
    }

    /// Record one observation into a named distribution.
    pub fn observe(name: &'static str, x: f64) {
        if is_enabled() {
            with_recorder(|rec| rec.metrics.observe(name, x));
        }
    }
}

#[cfg(not(feature = "trace"))]
mod active {
    use super::*;

    /// Always `false` with the `trace` feature off; guarded call sites
    /// are dead-code-eliminated.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    /// No-op with the `trace` feature off.
    pub fn install() {}

    /// Always `None` with the `trace` feature off.
    pub fn uninstall() -> Option<Recorder> {
        None
    }

    /// No-op with the `trace` feature off.
    pub fn set_now(_now: SimTime) {}

    /// No-op with the `trace` feature off.
    pub fn emit(_kind: &'static str, _fields: Vec<(&'static str, Value)>) {}

    /// No-op with the `trace` feature off.
    pub fn count(_name: &'static str, _delta: u64) {}

    /// No-op with the `trace` feature off.
    pub fn gauge(_name: &'static str, _value: f64) {}

    /// No-op with the `trace` feature off.
    pub fn observe(_name: &'static str, _x: f64) {}
}

pub use active::{count, emit, gauge, install, is_enabled, observe, set_now, uninstall};

/// Record one event if a recorder is installed. Field values are not
/// evaluated when recording is disabled.
///
/// ```
/// flowtune_obs::install();
/// flowtune_obs::obs_event!("sched.step", step = 4u64, width = 2usize);
/// if let Some(rec) = flowtune_obs::uninstall() {
///     assert_eq!(rec.events().len(), 1);
/// }
/// ```
#[macro_export]
macro_rules! obs_event {
    ($kind:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::is_enabled() {
            $crate::emit($kind, vec![$((stringify!($key), $crate::Value::from($value))),*]);
        }
    };
}

#[cfg(test)]
#[cfg(feature = "trace")]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_emits_nothing() {
        assert!(uninstall().is_none());
        assert!(!is_enabled());
        emit("never", vec![]);
        count("never", 1);
        assert!(uninstall().is_none());
    }

    #[test]
    fn records_events_with_sim_time_stamps() {
        install();
        set_now(SimTime::from_secs(60));
        obs_event!("test.alpha", id = 7u32);
        set_now(SimTime::from_secs(120));
        obs_event!("test.beta", frac = 0.5f64, label = "x");
        count("test.events", 2);
        gauge("test.level", 3.5);
        observe("test.width", 4.0);
        observe("test.width", 6.0);
        let rec = uninstall().expect("recorder was installed");
        assert!(!is_enabled());
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.events()[0].at_ms, 60_000);
        assert_eq!(rec.events()[1].at_ms, 120_000);
        assert_eq!(rec.metrics().counter("test.events"), 2);
        assert_eq!(rec.metrics().gauge_value("test.level"), Some(3.5));
        let d = rec.metrics().distribution("test.width").expect("observed");
        assert_eq!(d.count(), 2);
        let jsonl = rec.trace_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.starts_with(r#"{"t":60000,"kind":"test.alpha","id":7}"#));
    }

    #[test]
    fn field_expressions_not_evaluated_when_disabled() {
        let mut evaluated = false;
        obs_event!(
            "test.lazy",
            v = {
                evaluated = true;
                1u64
            }
        );
        assert!(!evaluated);
    }

    #[test]
    fn install_replaces_previous_recorder() {
        install();
        obs_event!("test.old");
        install();
        obs_event!("test.new");
        let rec = uninstall().expect("recorder was installed");
        assert_eq!(rec.events().len(), 1);
        assert_eq!(rec.events()[0].kind, "test.new");
    }
}
