//! The metrics registry: counters, gauges, and distributions.
//!
//! All maps are `BTreeMap` so JSON rendering iterates in a fixed order;
//! distribution summaries are computed from sorted sample copies. The
//! rendered document is deterministic byte-for-byte for a given recorded
//! sequence, which is what lets `ci/check.sh` diff it against a golden
//! file and what makes it suitable for seeding `BENCH_*.json`.

use std::collections::BTreeMap;

use flowtune_common::stats::{percentile_sorted, OnlineStats};

use crate::event::{push_json_f64, push_json_str};

/// A recorded distribution: running moments plus the raw samples (kept
/// so percentiles are exact, not approximated).
#[derive(Debug, Clone, Default)]
pub struct Distribution {
    stats: OnlineStats,
    samples: Vec<f64>,
    nan_count: u64,
}

impl Distribution {
    /// Record one observation. NaN is counted separately and never
    /// pollutes the moments or percentiles.
    pub fn observe(&mut self, x: f64) {
        if x.is_nan() {
            self.nan_count += 1;
        } else {
            self.stats.push(x);
            self.samples.push(x);
        }
    }

    /// Number of non-NaN observations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Number of NaN observations rejected.
    pub fn nan_count(&self) -> u64 {
        self.nan_count
    }

    /// The running moments over non-NaN observations.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    fn render(&self, out: &mut String) {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        out.push_str("{\"count\":");
        out.push_str(&self.stats.count().to_string());
        out.push_str(",\"nan_count\":");
        out.push_str(&self.nan_count.to_string());
        out.push_str(",\"mean\":");
        push_json_f64(out, self.stats.mean());
        out.push_str(",\"min\":");
        push_json_f64(out, self.stats.min());
        out.push_str(",\"max\":");
        push_json_f64(out, self.stats.max());
        for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            out.push_str(",\"");
            out.push_str(label);
            out.push_str("\":");
            match percentile_sorted(&sorted, q) {
                Some(v) => push_json_f64(out, v),
                None => out.push_str("null"),
            }
        }
        out.push('}');
    }
}

/// A registry of named counters, gauges, and distributions.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    distributions: BTreeMap<&'static str, Distribution>,
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (created at zero).
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set the named gauge to its latest value.
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Record one observation into the named distribution.
    pub fn observe(&mut self, name: &'static str, x: f64) {
        self.distributions.entry(name).or_default().observe(x);
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named distribution, if anything was observed into it.
    pub fn distribution(&self, name: &str) -> Option<&Distribution> {
        self.distributions.get(name)
    }

    /// Render the registry as a deterministic pretty-printed JSON
    /// document with `counters` / `gauges` / `distributions` sections,
    /// keys sorted, trailing newline included.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_str(&mut out, name);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_str(&mut out, name);
            out.push_str(": ");
            push_json_f64(&mut out, *v);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"distributions\": {");
        for (i, (name, d)) in self.distributions.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_str(&mut out, name);
            out.push_str(": ");
            d.render(&mut out);
        }
        if !self.distributions.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        m.count("sched.steps", 1);
        m.count("sched.steps", 2);
        assert_eq!(m.counter("sched.steps"), 3);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_keep_latest() {
        let mut m = MetricsRegistry::new();
        m.gauge("cloud.utilization", 0.25);
        m.gauge("cloud.utilization", 0.75);
        assert_eq!(m.gauge_value("cloud.utilization"), Some(0.75));
        assert_eq!(m.gauge_value("missing"), None);
    }

    #[test]
    fn distribution_rejects_nan_separately() {
        let mut d = Distribution::default();
        d.observe(1.0);
        d.observe(f64::NAN);
        d.observe(3.0);
        assert_eq!(d.count(), 2);
        assert_eq!(d.nan_count(), 1);
        assert_eq!(d.stats().min(), 1.0);
        assert_eq!(d.stats().max(), 3.0);
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.count("b.second", 2);
        m.count("a.first", 1);
        m.gauge("g", 1.5);
        m.observe("d", 2.0);
        m.observe("d", 4.0);
        let a = m.to_json();
        let b = m.to_json();
        assert_eq!(a, b);
        // Sorted: a.first precedes b.second regardless of insertion.
        let ia = a.find("a.first").unwrap();
        let ib = a.find("b.second").unwrap();
        assert!(ia < ib);
        assert!(a.ends_with("}\n"));
        assert!(a.contains("\"p50\":"));
    }

    #[test]
    fn empty_registry_renders_empty_sections() {
        let m = MetricsRegistry::new();
        assert_eq!(
            m.to_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"distributions\": {}\n}\n"
        );
    }
}
