//! Deterministic observability: structured event log + metrics registry.
//!
//! This crate is the telemetry loop of the repro (ISSUE 4): a sim-time-
//! stamped JSONL trace and a metrics registry (counters, gauges,
//! distributions) that any layer can cheaply write into. Everything is
//! deterministic by construction — no wall clock, no hash-map
//! iteration, hand-rolled JSON with a stable field order — so that two
//! runs with identical seeds produce byte-identical `--trace-out` /
//! `--metrics-out` files, pinned by golden tests.
//!
//! # Usage
//!
//! The run owner installs a recorder, the layers emit, the owner takes
//! the recorder back and writes the files:
//!
//! ```
//! use flowtune_common::SimTime;
//!
//! flowtune_obs::install();
//! flowtune_obs::set_now(SimTime::from_secs(60));
//! flowtune_obs::obs_event!("sched.step", step = 1u64, width = 4usize);
//! flowtune_obs::count("sched.steps", 1);
//! flowtune_obs::observe("sched.width", 4.0);
//! if let Some(rec) = flowtune_obs::uninstall() {
//!     assert_eq!(rec.trace_jsonl().lines().count(), 1);
//! }
//! ```
//!
//! With no recorder installed every call is a cold branch on a
//! thread-local flag; with the `trace` cargo feature disabled the whole
//! surface compiles to no-ops and guarded call sites disappear.

mod event;
mod metrics;
mod recorder;

pub use event::{Event, Value};
pub use metrics::{Distribution, MetricsRegistry};
pub use recorder::{
    count, emit, gauge, install, is_enabled, observe, set_now, uninstall, Recorder,
};
