//! Reference knapsack solver and packer — the pre-optimization
//! Algorithm 3.
//!
//! This is the original branch-and-bound knapsack implementation,
//! retained verbatim (minus observability instrumentation) as the
//! behavioural baseline for the memoized-bound + dominance-pruning
//! solver in [`crate::knapsack`] (DESIGN §5i):
//!
//! * the golden equivalence tests in `equivalence_tests.rs` run it
//!   side-by-side with the optimized solver and assert element-wise
//!   identical solutions (chosen set, value, size);
//! * `bench_interleave` (crate `flowtune-bench`, feature `reference`)
//!   times both in the same process and records the speedup in
//!   `BENCH_interleave.json`.
//!
//! It recomputes the Dantzig bound from scratch at every search node
//! and re-explores every state-equivalent subtree — two prefixes that
//! reach the same `(depth, remaining-capacity)` state each pay for the
//! full suffix search — exactly the costs the optimized solver
//! eliminates. Do not "improve" this module: its value is that it
//! stays the simple, obviously-correct formulation of the search.
//!
//! [`pack_reference`] replays the Algorithm 2 per-schedule packing loop
//! of [`crate::lp::LpInterleaver::interleave`] on top of the reference
//! solver, so pack-level equivalence tests isolate the solver as the
//! only possible source of divergence.

use flowtune_common::SimDuration;
use flowtune_sched::{idle_slots, Schedule};

use crate::buildop::BuildOp;
use crate::knapsack::KnapsackSolution;

fn density(value: f64, size: u64) -> f64 {
    if size == 0 {
        f64::INFINITY
    } else {
        value / size as f64
    }
}

/// Pre-optimization exact 0/1 knapsack: depth-first branch and bound
/// with the Dantzig bound recomputed at every node and no state
/// dominance. `pruned` is always 0 — the concept does not exist here.
pub fn solve_knapsack_budgeted(
    capacity: u64,
    sizes: &[u64],
    values: &[f64],
    node_budget: usize,
) -> KnapsackSolution {
    assert_eq!(sizes.len(), values.len(), "sizes/values length mismatch");
    // Order by density for tight bounds and a good greedy incumbent;
    // ties broken towards larger items, which matters on subset-sum-like
    // instances (equal densities) where big items must be placed first.
    let mut order: Vec<usize> = (0..sizes.len()).filter(|&i| values[i] > 0.0).collect();
    order.sort_by(|&a, &b| {
        density(values[b], sizes[b])
            .total_cmp(&density(values[a], sizes[a]))
            .then(sizes[b].cmp(&sizes[a]))
    });

    // Greedy incumbent.
    let mut best_chosen: Vec<usize> = Vec::new();
    let mut best_value = 0.0f64;
    {
        let mut remaining = capacity;
        for &i in &order {
            if sizes[i] <= remaining {
                best_chosen.push(i);
                best_value += values[i];
                remaining -= sizes[i];
            }
        }
    }

    struct Search<'a> {
        order: &'a [usize],
        sizes: &'a [u64],
        values: &'a [f64],
        best_value: f64,
        best_chosen: Vec<usize>,
        stack: Vec<usize>,
        nodes: usize,
        budget: usize,
        /// LP bound at the root; reaching it proves optimality and ends
        /// the search (crucial for subset-sum-like instances whose equal
        /// densities defeat bound pruning).
        root_bound: f64,
        done: bool,
    }

    impl Search<'_> {
        fn bound_from(&self, depth: usize, remaining: u64) -> f64 {
            let mut cap = remaining;
            let mut bound = 0.0;
            for &i in &self.order[depth..] {
                if self.sizes[i] <= cap {
                    bound += self.values[i];
                    cap -= self.sizes[i];
                } else {
                    bound += self.values[i] * cap as f64 / self.sizes[i].max(1) as f64;
                    break;
                }
            }
            bound
        }

        fn dfs(&mut self, depth: usize, value: f64, remaining: u64) {
            self.nodes += 1;
            if self.done || self.nodes > self.budget {
                return;
            }
            if value > self.best_value {
                self.best_value = value;
                self.best_chosen = self.stack.clone();
                if self.best_value + 1e-9 >= self.root_bound {
                    self.done = true;
                    return;
                }
            }
            if depth == self.order.len() {
                return;
            }
            if value + self.bound_from(depth, remaining) <= self.best_value {
                return; // pruned by LP bound
            }
            let i = self.order[depth];
            // Branch: take item i (if it fits), then skip it.
            if self.sizes[i] <= remaining {
                self.stack.push(i);
                self.dfs(depth + 1, value + self.values[i], remaining - self.sizes[i]);
                self.stack.pop();
            }
            self.dfs(depth + 1, value, remaining);
        }
    }

    let mut search = Search {
        order: &order,
        sizes,
        values,
        best_value,
        best_chosen,
        stack: Vec::new(),
        nodes: 0,
        budget: node_budget,
        root_bound: 0.0,
        done: false,
    };
    search.root_bound = search.bound_from(0, capacity);
    if search.best_value + 1e-9 >= search.root_bound {
        // The greedy incumbent already matches the LP bound.
        search.done = true;
    }
    search.dfs(0, 0.0, capacity);
    let mut chosen = search.best_chosen;
    chosen.sort_unstable();
    let size = chosen.iter().map(|&i| sizes[i]).sum();
    KnapsackSolution {
        chosen,
        value: search.best_value,
        size,
        nodes: search.nodes,
        pruned: 0,
    }
}

/// Pre-optimization exact 0/1 knapsack (default node budget of 2
/// million, matching [`crate::knapsack::solve_knapsack`]).
pub fn solve_knapsack(capacity: u64, sizes: &[u64], values: &[f64]) -> KnapsackSolution {
    solve_knapsack_budgeted(capacity, sizes, values, 2_000_000)
}

/// Pre-optimization per-schedule pack: the Algorithm 2 main loop of
/// [`crate::lp::LpInterleaver::interleave`], verbatim minus
/// observability, on top of the reference solver. Slot enumeration,
/// in-slot ordering, and pool maintenance are identical, so any
/// divergence from the optimized interleaver is the knapsack solver's.
pub fn pack_reference(
    quantum: SimDuration,
    schedule: &mut Schedule,
    pending: &[BuildOp],
) -> Vec<BuildOp> {
    let mut slots = idle_slots(schedule, quantum);
    slots.sort_by_key(|s| std::cmp::Reverse(s.duration()));
    let mut remaining: Vec<BuildOp> = pending.to_vec();
    let mut placed = Vec::new();
    for slot in slots {
        if remaining.is_empty() {
            break;
        }
        let sizes: Vec<u64> = remaining.iter().map(|b| b.duration.as_millis()).collect();
        let gains: Vec<f64> = remaining.iter().map(|b| b.gain).collect();
        let sol = solve_knapsack(slot.duration().as_millis(), &sizes, &gains);
        if sol.chosen.is_empty() {
            continue;
        }
        // Schedule the chosen ops inside the slot by decreasing gain.
        let mut chosen: Vec<BuildOp> = sol.chosen.iter().map(|&i| remaining[i]).collect();
        chosen.sort_by(|a, b| b.gain.total_cmp(&a.gain));
        let mut cursor = slot.start;
        for op in &chosen {
            #[allow(clippy::expect_used)]
            schedule
                .try_insert_build(
                    slot.container,
                    cursor,
                    cursor + op.duration,
                    op.schedule_op_id(),
                    op.build,
                    quantum,
                )
                // flowtune-allow(panic-hygiene): the knapsack capacity equals the slot, so chosen ops fit it
                .expect("knapsack-chosen ops must fit their slot");
            cursor += op.duration;
        }
        // Remove placed ops from the pool.
        let placed_ids: std::collections::BTreeSet<_> = chosen.iter().map(|b| b.id).collect();
        remaining.retain(|b| !placed_ids.contains(&b.id));
        placed.extend(chosen);
    }
    placed
}
