//! # flowtune-interleave
//!
//! Index-build interleaving: packing build-index operators into the idle
//! slots of dataflow execution schedules without affecting the dataflow's
//! execution time or monetary cost (§5.3).
//!
//! Two algorithms, as in the paper:
//!
//! * **LP-based interleaving** ([`lp::LpInterleaver`], Algorithm 2) —
//!   schedule the dataflow first, enumerate the idle slots largest-first,
//!   and solve a 0/1 knapsack per slot (Algorithm 3: LP relaxation +
//!   branch and bound) to pick the build operators that maximise total
//!   gain.
//! * **Online interleaving** ([`online::OnlineInterleaver`], §5.3.2) —
//!   extend the skyline scheduler with *optional* operators scheduled
//!   along the dataflow.
//!
//! Plus the evaluation baselines of §6.4: a Graham-style greedy packer
//! and the merged-slot knapsack upper bound.
//!
//! The knapsack search is accelerated by memoized Dantzig bounds and
//! dominance pruning (DESIGN §5i); the pre-optimization solver is
//! retained in [`reference`] (`cfg(test)` or the `reference` cargo
//! feature) and golden tests pin element-wise identical solutions.

pub mod buildop;
pub mod deferred;
mod equivalence_tests;
pub mod knapsack;
pub mod lp;
pub mod online;
#[cfg(any(test, feature = "reference"))]
pub mod reference;

pub use buildop::{BuildOp, BUILD_OP_ID_BASE};
pub use deferred::{BatchBuild, DeferredBuildQueue};
pub use knapsack::{
    fractional_upper_bound, graham_greedy, merged_upper_bound, solve_knapsack, KnapsackSolution,
};
pub use lp::LpInterleaver;
pub use online::OnlineInterleaver;
