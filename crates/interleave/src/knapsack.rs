//! 0/1 knapsack machinery (Algorithm 3 and the §6.4 baselines).
//!
//! Packing build operators into one idle slot is a 0/1 knapsack: item
//! sizes are build durations, item values are index gains, capacity is
//! the slot length. Algorithm 3 solves the LP relaxation and then a
//! branch-and-bound search for integral weights; we implement exactly
//! that — depth-first branch and bound with the fractional (Dantzig)
//! bound, plus a node budget that degrades gracefully to the greedy
//! solution on adversarial instances (never reached at the paper's
//! sizes).
//!
//! # Scale state (DESIGN §5i)
//!
//! The search keeps a per-`(depth, remaining-capacity)` state table
//! that serves two purposes at once: **dominance pruning** (a prefix
//! that reaches a state an earlier, at-least-as-valuable prefix already
//! reached cannot improve the incumbent — its whole subtree is cut and
//! counted in [`KnapsackSolution::pruned`]) and **bound memoization**
//! (the Dantzig bound is a pure function of the state, so it is
//! computed once per state instead of once per node). The table
//! engages lazily, only after the search crosses a node threshold, so
//! tiny searches (the common per-slot case) pay nothing for it. Both
//! techniques are exact: unbudgeted solves are element-wise identical
//! to the retained pre-optimization solver in [`crate::reference`],
//! pinned by the golden equivalence suite in `equivalence_tests.rs`.

/// Result of a knapsack solve.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackSolution {
    /// Indices of the chosen items (into the caller's slices).
    pub chosen: Vec<usize>,
    /// Total value of the chosen items.
    pub value: f64,
    /// Total size of the chosen items.
    pub size: u64,
    /// Branch-and-bound nodes expanded (0 when the greedy incumbent
    /// already met the LP bound and the search never ran a full pass).
    pub nodes: usize,
    /// Nodes cut by dominance pruning: visits to a
    /// (depth, remaining-capacity) state that an earlier, at-least-as-
    /// valuable prefix had already explored. Always 0 in the
    /// [`crate::reference`] solver, which has no state table.
    pub pruned: usize,
}

/// Upper bound from the LP relaxation (items sorted by value density,
/// last item taken fractionally) — the classic Dantzig bound.
pub fn fractional_upper_bound(capacity: u64, sizes: &[u64], values: &[f64]) -> f64 {
    assert_eq!(sizes.len(), values.len(), "sizes/values length mismatch");
    let mut order: Vec<usize> = (0..sizes.len()).filter(|&i| values[i] > 0.0).collect();
    order.sort_by(|&a, &b| density(values[b], sizes[b]).total_cmp(&density(values[a], sizes[a])));
    let mut remaining = capacity;
    let mut bound = 0.0;
    for i in order {
        if sizes[i] == 0 {
            bound += values[i];
        } else if sizes[i] <= remaining {
            bound += values[i];
            remaining -= sizes[i];
        } else {
            bound += values[i] * remaining as f64 / sizes[i] as f64;
            break;
        }
    }
    bound
}

fn density(value: f64, size: u64) -> f64 {
    if size == 0 {
        f64::INFINITY
    } else {
        value / size as f64
    }
}

/// Exact 0/1 knapsack via branch and bound with the LP-relaxation bound
/// (Algorithm 3), accelerated by per-state bound memoization and
/// dominance pruning (module docs). Items with non-positive value are
/// never chosen.
///
/// `node_budget` caps the search; on exhaustion the best solution found
/// so far (at least as good as density-greedy) is returned. The default
/// entry point [`solve_knapsack`] uses a budget far above anything the
/// paper's instance sizes need.
pub fn solve_knapsack_budgeted(
    capacity: u64,
    sizes: &[u64],
    values: &[f64],
    node_budget: usize,
) -> KnapsackSolution {
    assert_eq!(sizes.len(), values.len(), "sizes/values length mismatch");
    // Order by density for tight bounds and a good greedy incumbent;
    // ties broken towards larger items, which matters on subset-sum-like
    // instances (equal densities) where big items must be placed first.
    let mut order: Vec<usize> = (0..sizes.len()).filter(|&i| values[i] > 0.0).collect();
    order.sort_by(|&a, &b| {
        density(values[b], sizes[b])
            .total_cmp(&density(values[a], sizes[a]))
            .then(sizes[b].cmp(&sizes[a]))
    });

    // Greedy incumbent.
    let mut best_chosen: Vec<usize> = Vec::new();
    let mut best_value = 0.0f64;
    {
        let mut remaining = capacity;
        for &i in &order {
            if sizes[i] <= remaining {
                best_chosen.push(i);
                best_value += values[i];
                remaining -= sizes[i];
            }
        }
    }

    /// Per-(depth, remaining-capacity) search state: the best prefix
    /// value that has reached it (dominance) and the memoized Dantzig
    /// bound of its completion (a pure function of the key, so caching
    /// cannot change any prune decision).
    struct StateEntry {
        prefix: f64,
        bound: Option<f64>,
    }

    /// The state table engages only once the search has expanded this
    /// many nodes. Small searches — the common per-slot case at the
    /// paper's sizes, where bound pruning alone keeps the tree tiny —
    /// pay one integer compare per node instead of a map insertion;
    /// adversarial searches (equal densities, heavy state collisions)
    /// blow through the threshold and get the full dominance +
    /// memoization machinery, which caps them at O(items x capacity)
    /// further states. Deterministic: node counts are a pure function
    /// of the instance.
    const STATE_TABLE_MIN_NODES: usize = 2048;

    struct Search<'a> {
        order: &'a [usize],
        sizes: &'a [u64],
        values: &'a [f64],
        best_value: f64,
        best_chosen: Vec<usize>,
        stack: Vec<usize>,
        nodes: usize,
        pruned: usize,
        budget: usize,
        states: std::collections::BTreeMap<(usize, u64), StateEntry>,
        /// LP bound at the root; reaching it proves optimality and ends
        /// the search (crucial for subset-sum-like instances whose equal
        /// densities defeat bound pruning).
        root_bound: f64,
        done: bool,
    }

    impl Search<'_> {
        fn bound_from(&self, depth: usize, remaining: u64) -> f64 {
            let mut cap = remaining;
            let mut bound = 0.0;
            for &i in &self.order[depth..] {
                if self.sizes[i] <= cap {
                    bound += self.values[i];
                    cap -= self.sizes[i];
                } else {
                    bound += self.values[i] * cap as f64 / self.sizes[i].max(1) as f64;
                    break;
                }
            }
            bound
        }

        /// State-table lookup for an engaged (large) search: dominance
        /// prune (`None`) or the memoized Dantzig bound (`Some`).
        ///
        /// Dominance: an earlier visit reached this exact
        /// (depth, remaining) state with at least this prefix value.
        /// The completions from here are the same item suffix over the
        /// same capacity, so nothing below can beat what that visit's
        /// subtree already established — `<=` is safe because
        /// incumbent updates require a *strict* improvement (exactness
        /// argument in DESIGN §5i). Lazy engagement only *withholds*
        /// table entries for the first visits, never invents prunes,
        /// so it cannot affect exactness either.
        ///
        /// Kept out of line so the table machinery does not bloat the
        /// `dfs` hot path that small, never-engaging searches run.
        #[inline(never)]
        fn table_bound(&mut self, depth: usize, value: f64, remaining: u64) -> Option<f64> {
            let cached_bound = match self.states.entry((depth, remaining)) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let s = e.get_mut();
                    if value <= s.prefix {
                        self.pruned += 1;
                        return None;
                    }
                    s.prefix = value;
                    s.bound
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(StateEntry {
                        prefix: value,
                        bound: None,
                    });
                    None
                }
            };
            Some(match cached_bound {
                Some(b) => b,
                None => {
                    let b = self.bound_from(depth, remaining);
                    if let Some(s) = self.states.get_mut(&(depth, remaining)) {
                        s.bound = Some(b);
                    }
                    b
                }
            })
        }

        fn dfs(&mut self, depth: usize, value: f64, remaining: u64) {
            self.nodes += 1;
            if self.done || self.nodes > self.budget {
                return;
            }
            if value > self.best_value {
                self.best_value = value;
                self.best_chosen = self.stack.clone();
                if self.best_value + 1e-9 >= self.root_bound {
                    self.done = true;
                    return;
                }
            }
            if depth == self.order.len() {
                return;
            }
            let bound = if self.nodes > STATE_TABLE_MIN_NODES {
                match self.table_bound(depth, value, remaining) {
                    Some(b) => b,
                    None => return, // dominance-pruned
                }
            } else {
                self.bound_from(depth, remaining)
            };
            if value + bound <= self.best_value {
                return; // pruned by the (memoized) LP bound
            }
            let i = self.order[depth];
            // Branch: take item i (if it fits), then skip it.
            if self.sizes[i] <= remaining {
                self.stack.push(i);
                self.dfs(depth + 1, value + self.values[i], remaining - self.sizes[i]);
                self.stack.pop();
            }
            self.dfs(depth + 1, value, remaining);
        }
    }

    let mut search = Search {
        order: &order,
        sizes,
        values,
        best_value,
        best_chosen,
        stack: Vec::new(),
        nodes: 0,
        pruned: 0,
        budget: node_budget,
        states: std::collections::BTreeMap::new(),
        root_bound: 0.0,
        done: false,
    };
    search.root_bound = search.bound_from(0, capacity);
    if search.best_value + 1e-9 >= search.root_bound {
        // The greedy incumbent already matches the LP bound.
        search.done = true;
    }
    search.dfs(0, 0.0, capacity);
    let mut chosen = search.best_chosen;
    chosen.sort_unstable();
    let size = chosen.iter().map(|&i| sizes[i]).sum();
    KnapsackSolution {
        chosen,
        value: search.best_value,
        size,
        nodes: search.nodes,
        pruned: search.pruned,
    }
}

/// Exact 0/1 knapsack (default node budget of 2 million).
pub fn solve_knapsack(capacity: u64, sizes: &[u64], values: &[f64]) -> KnapsackSolution {
    solve_knapsack_budgeted(capacity, sizes, values, 2_000_000)
}

/// Graham-inspired greedy multi-slot packer (the §6.4 baseline): order
/// operators by descending duration and assign each to the slot with the
/// most remaining time; operators that fit nowhere are skipped.
///
/// Returns `assignments[i] = Some(slot)` per item and the total value
/// packed.
pub fn graham_greedy(slots: &[u64], sizes: &[u64], values: &[f64]) -> (Vec<Option<usize>>, f64) {
    assert_eq!(sizes.len(), values.len(), "sizes/values length mismatch");
    let mut remaining: Vec<u64> = slots.to_vec();
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]));
    let mut assignment = vec![None; sizes.len()];
    let mut total = 0.0;
    for i in order {
        let Some((slot, _)) = remaining
            .iter()
            .enumerate()
            .filter(|(_, r)| **r >= sizes[i])
            .max_by_key(|(_, r)| **r)
        else {
            continue;
        };
        remaining[slot] -= sizes[i];
        assignment[i] = Some(slot);
        total += values[i];
    }
    (assignment, total)
}

/// Theoretical upper bound used in Fig. 11: merge all idle slots into one
/// continuous segment and solve a single knapsack over it. No real
/// packing can beat it because merging only removes fragmentation
/// constraints.
pub fn merged_upper_bound(slots: &[u64], sizes: &[u64], values: &[f64]) -> f64 {
    let capacity: u64 = slots.iter().sum();
    solve_knapsack(capacity, sizes, values).value
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;

    #[test]
    fn knapsack_known_optimum() {
        // Classic instance: capacity 10, optimum = items 1+2 (values 9).
        let sizes = [6, 4, 5, 3];
        let values = [7.0, 5.0, 4.0, 2.5];
        let sol = solve_knapsack(10, &sizes, &values);
        assert_eq!(sol.chosen, vec![0, 1]);
        assert!((sol.value - 12.0).abs() < 1e-9);
        assert_eq!(sol.size, 10);
    }

    #[test]
    fn knapsack_beats_density_greedy_when_needed() {
        // Density greedy takes item 0 (density 1.0) and fails; optimum is
        // items 1+2.
        let sizes = [10, 6, 5];
        let values = [10.0, 5.9, 4.9];
        let sol = solve_knapsack(11, &sizes, &values);
        assert!((sol.value - 10.8).abs() < 1e-9);
        assert_eq!(sol.chosen, vec![1, 2]);
    }

    #[test]
    fn nonpositive_values_never_chosen() {
        let sol = solve_knapsack(100, &[1, 1, 1], &[-1.0, 0.0, 2.0]);
        assert_eq!(sol.chosen, vec![2]);
    }

    #[test]
    fn zero_capacity() {
        let sol = solve_knapsack(0, &[1, 2], &[1.0, 2.0]);
        assert!(sol.chosen.is_empty());
        assert_eq!(sol.value, 0.0);
    }

    #[test]
    fn zero_size_items_are_free() {
        let sol = solve_knapsack(1, &[0, 5], &[3.0, 10.0]);
        assert_eq!(sol.chosen, vec![0]);
    }

    #[test]
    fn fractional_bound_dominates_integral_optimum() {
        let sizes = [6, 4, 5, 3];
        let values = [7.0, 5.0, 4.0, 2.5];
        let lp = fractional_upper_bound(10, &sizes, &values);
        let ip = solve_knapsack(10, &sizes, &values).value;
        assert!(lp >= ip - 1e-9, "LP {lp} < IP {ip}");
    }

    #[test]
    fn graham_assigns_to_largest_remaining_slot() {
        let slots = [10, 6];
        let sizes = [7, 5, 4];
        let values = [7.0, 5.0, 4.0];
        let (assignment, total) = graham_greedy(&slots, &sizes, &values);
        // 7 -> slot0 (10 left), 5 -> slot1 (6 left), 4 -> none (3,1 left).
        assert_eq!(assignment, vec![Some(0), Some(1), None]);
        assert!((total - 12.0).abs() < 1e-9);
    }

    #[test]
    fn merged_bound_is_at_least_graham() {
        let slots = [10, 6];
        let sizes = [7, 5, 4];
        let values = [7.0, 5.0, 4.0];
        let (_, graham) = graham_greedy(&slots, &sizes, &values);
        let ub = merged_upper_bound(&slots, &sizes, &values);
        assert!(ub >= graham - 1e-9);
        // Merged capacity 16 fits everything: 16.0.
        assert!((ub - 16.0).abs() < 1e-9);
    }

    fn random_items(rng: &mut SimRng, max_n: u64) -> (Vec<u64>, Vec<f64>, Vec<u64>) {
        let n = rng.uniform_u64(0, max_n) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| rng.uniform_u64(1, 30)).collect();
        let raw_values: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 100)).collect();
        let values: Vec<f64> = raw_values.iter().map(|&v| v as f64).collect();
        (sizes, values, raw_values)
    }

    #[test]
    fn bnb_matches_dp_reference() {
        let mut rng = SimRng::seed_from_u64(0x1CA7);
        for _ in 0..120 {
            let (sizes, values, raw_values) = random_items(&mut rng, 14);
            let capacity = rng.uniform_u64(0, 120);
            let sol = solve_knapsack(capacity, &sizes, &values);
            // Integer DP reference.
            let cap = capacity as usize;
            let mut dp = vec![0u64; cap + 1];
            for i in 0..sizes.len() {
                let (sz, v) = (sizes[i] as usize, raw_values[i]);
                for c in (sz..=cap).rev() {
                    dp[c] = dp[c].max(dp[c - sz] + v);
                }
            }
            assert!(
                (sol.value - dp[cap] as f64).abs() < 1e-6,
                "bnb {} vs dp {}",
                sol.value,
                dp[cap]
            );
            // Chosen set is feasible and value-consistent.
            let sz: u64 = sol.chosen.iter().map(|&i| sizes[i]).sum();
            assert!(sz <= capacity);
            let val: f64 = sol.chosen.iter().map(|&i| values[i]).sum();
            assert!((val - sol.value).abs() < 1e-6);
        }
    }

    #[test]
    fn lp_bound_always_dominates() {
        let mut rng = SimRng::seed_from_u64(0x1CA8);
        for _ in 0..120 {
            let (sizes, values, _) = random_items(&mut rng, 12);
            let capacity = rng.uniform_u64(0, 120);
            let lp = fractional_upper_bound(capacity, &sizes, &values);
            let ip = solve_knapsack(capacity, &sizes, &values).value;
            assert!(lp >= ip - 1e-6);
        }
    }
}
