//! 0/1 knapsack machinery (Algorithm 3 and the §6.4 baselines).
//!
//! Packing build operators into one idle slot is a 0/1 knapsack: item
//! sizes are build durations, item values are index gains, capacity is
//! the slot length. Algorithm 3 solves the LP relaxation and then a
//! branch-and-bound search for integral weights; we implement exactly
//! that — depth-first branch and bound with the fractional (Dantzig)
//! bound, plus a node budget that degrades gracefully to the greedy
//! solution on adversarial instances (never reached at the paper's
//! sizes).

/// Result of a knapsack solve.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackSolution {
    /// Indices of the chosen items (into the caller's slices).
    pub chosen: Vec<usize>,
    /// Total value of the chosen items.
    pub value: f64,
    /// Total size of the chosen items.
    pub size: u64,
    /// Branch-and-bound nodes expanded (0 when the greedy incumbent
    /// already met the LP bound and the search never ran a full pass).
    pub nodes: usize,
}

/// Upper bound from the LP relaxation (items sorted by value density,
/// last item taken fractionally) — the classic Dantzig bound.
pub fn fractional_upper_bound(capacity: u64, sizes: &[u64], values: &[f64]) -> f64 {
    assert_eq!(sizes.len(), values.len(), "sizes/values length mismatch");
    let mut order: Vec<usize> = (0..sizes.len()).filter(|&i| values[i] > 0.0).collect();
    order.sort_by(|&a, &b| density(values[b], sizes[b]).total_cmp(&density(values[a], sizes[a])));
    let mut remaining = capacity;
    let mut bound = 0.0;
    for i in order {
        if sizes[i] == 0 {
            bound += values[i];
        } else if sizes[i] <= remaining {
            bound += values[i];
            remaining -= sizes[i];
        } else {
            bound += values[i] * remaining as f64 / sizes[i] as f64;
            break;
        }
    }
    bound
}

fn density(value: f64, size: u64) -> f64 {
    if size == 0 {
        f64::INFINITY
    } else {
        value / size as f64
    }
}

/// Exact 0/1 knapsack via branch and bound with the LP-relaxation bound
/// (Algorithm 3). Items with non-positive value are never chosen.
///
/// `node_budget` caps the search; on exhaustion the best solution found
/// so far (at least as good as density-greedy) is returned. The default
/// entry point [`solve_knapsack`] uses a budget far above anything the
/// paper's instance sizes need.
pub fn solve_knapsack_budgeted(
    capacity: u64,
    sizes: &[u64],
    values: &[f64],
    node_budget: usize,
) -> KnapsackSolution {
    assert_eq!(sizes.len(), values.len(), "sizes/values length mismatch");
    // Order by density for tight bounds and a good greedy incumbent;
    // ties broken towards larger items, which matters on subset-sum-like
    // instances (equal densities) where big items must be placed first.
    let mut order: Vec<usize> = (0..sizes.len()).filter(|&i| values[i] > 0.0).collect();
    order.sort_by(|&a, &b| {
        density(values[b], sizes[b])
            .total_cmp(&density(values[a], sizes[a]))
            .then(sizes[b].cmp(&sizes[a]))
    });

    // Greedy incumbent.
    let mut best_chosen: Vec<usize> = Vec::new();
    let mut best_value = 0.0f64;
    {
        let mut remaining = capacity;
        for &i in &order {
            if sizes[i] <= remaining {
                best_chosen.push(i);
                best_value += values[i];
                remaining -= sizes[i];
            }
        }
    }

    struct Search<'a> {
        order: &'a [usize],
        sizes: &'a [u64],
        values: &'a [f64],
        best_value: f64,
        best_chosen: Vec<usize>,
        stack: Vec<usize>,
        nodes: usize,
        budget: usize,
        /// LP bound at the root; reaching it proves optimality and ends
        /// the search (crucial for subset-sum-like instances whose equal
        /// densities defeat bound pruning).
        root_bound: f64,
        done: bool,
    }

    impl Search<'_> {
        fn bound_from(&self, depth: usize, remaining: u64) -> f64 {
            let mut cap = remaining;
            let mut bound = 0.0;
            for &i in &self.order[depth..] {
                if self.sizes[i] <= cap {
                    bound += self.values[i];
                    cap -= self.sizes[i];
                } else {
                    bound += self.values[i] * cap as f64 / self.sizes[i].max(1) as f64;
                    break;
                }
            }
            bound
        }

        fn dfs(&mut self, depth: usize, value: f64, remaining: u64) {
            self.nodes += 1;
            if self.done || self.nodes > self.budget {
                return;
            }
            if value > self.best_value {
                self.best_value = value;
                self.best_chosen = self.stack.clone();
                if self.best_value + 1e-9 >= self.root_bound {
                    self.done = true;
                    return;
                }
            }
            if depth == self.order.len() {
                return;
            }
            if value + self.bound_from(depth, remaining) <= self.best_value {
                return; // pruned by LP bound
            }
            let i = self.order[depth];
            // Branch: take item i (if it fits), then skip it.
            if self.sizes[i] <= remaining {
                self.stack.push(i);
                self.dfs(depth + 1, value + self.values[i], remaining - self.sizes[i]);
                self.stack.pop();
            }
            self.dfs(depth + 1, value, remaining);
        }
    }

    let mut search = Search {
        order: &order,
        sizes,
        values,
        best_value,
        best_chosen,
        stack: Vec::new(),
        nodes: 0,
        budget: node_budget,
        root_bound: 0.0,
        done: false,
    };
    search.root_bound = search.bound_from(0, capacity);
    if search.best_value + 1e-9 >= search.root_bound {
        // The greedy incumbent already matches the LP bound.
        search.done = true;
    }
    search.dfs(0, 0.0, capacity);
    let mut chosen = search.best_chosen;
    chosen.sort_unstable();
    let size = chosen.iter().map(|&i| sizes[i]).sum();
    KnapsackSolution {
        chosen,
        value: search.best_value,
        size,
        nodes: search.nodes,
    }
}

/// Exact 0/1 knapsack (default node budget of 2 million).
pub fn solve_knapsack(capacity: u64, sizes: &[u64], values: &[f64]) -> KnapsackSolution {
    solve_knapsack_budgeted(capacity, sizes, values, 2_000_000)
}

/// Graham-inspired greedy multi-slot packer (the §6.4 baseline): order
/// operators by descending duration and assign each to the slot with the
/// most remaining time; operators that fit nowhere are skipped.
///
/// Returns `assignments[i] = Some(slot)` per item and the total value
/// packed.
pub fn graham_greedy(slots: &[u64], sizes: &[u64], values: &[f64]) -> (Vec<Option<usize>>, f64) {
    assert_eq!(sizes.len(), values.len(), "sizes/values length mismatch");
    let mut remaining: Vec<u64> = slots.to_vec();
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]));
    let mut assignment = vec![None; sizes.len()];
    let mut total = 0.0;
    for i in order {
        let Some((slot, _)) = remaining
            .iter()
            .enumerate()
            .filter(|(_, r)| **r >= sizes[i])
            .max_by_key(|(_, r)| **r)
        else {
            continue;
        };
        remaining[slot] -= sizes[i];
        assignment[i] = Some(slot);
        total += values[i];
    }
    (assignment, total)
}

/// Theoretical upper bound used in Fig. 11: merge all idle slots into one
/// continuous segment and solve a single knapsack over it. No real
/// packing can beat it because merging only removes fragmentation
/// constraints.
pub fn merged_upper_bound(slots: &[u64], sizes: &[u64], values: &[f64]) -> f64 {
    let capacity: u64 = slots.iter().sum();
    solve_knapsack(capacity, sizes, values).value
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;

    #[test]
    fn knapsack_known_optimum() {
        // Classic instance: capacity 10, optimum = items 1+2 (values 9).
        let sizes = [6, 4, 5, 3];
        let values = [7.0, 5.0, 4.0, 2.5];
        let sol = solve_knapsack(10, &sizes, &values);
        assert_eq!(sol.chosen, vec![0, 1]);
        assert!((sol.value - 12.0).abs() < 1e-9);
        assert_eq!(sol.size, 10);
    }

    #[test]
    fn knapsack_beats_density_greedy_when_needed() {
        // Density greedy takes item 0 (density 1.0) and fails; optimum is
        // items 1+2.
        let sizes = [10, 6, 5];
        let values = [10.0, 5.9, 4.9];
        let sol = solve_knapsack(11, &sizes, &values);
        assert!((sol.value - 10.8).abs() < 1e-9);
        assert_eq!(sol.chosen, vec![1, 2]);
    }

    #[test]
    fn nonpositive_values_never_chosen() {
        let sol = solve_knapsack(100, &[1, 1, 1], &[-1.0, 0.0, 2.0]);
        assert_eq!(sol.chosen, vec![2]);
    }

    #[test]
    fn zero_capacity() {
        let sol = solve_knapsack(0, &[1, 2], &[1.0, 2.0]);
        assert!(sol.chosen.is_empty());
        assert_eq!(sol.value, 0.0);
    }

    #[test]
    fn zero_size_items_are_free() {
        let sol = solve_knapsack(1, &[0, 5], &[3.0, 10.0]);
        assert_eq!(sol.chosen, vec![0]);
    }

    #[test]
    fn fractional_bound_dominates_integral_optimum() {
        let sizes = [6, 4, 5, 3];
        let values = [7.0, 5.0, 4.0, 2.5];
        let lp = fractional_upper_bound(10, &sizes, &values);
        let ip = solve_knapsack(10, &sizes, &values).value;
        assert!(lp >= ip - 1e-9, "LP {lp} < IP {ip}");
    }

    #[test]
    fn graham_assigns_to_largest_remaining_slot() {
        let slots = [10, 6];
        let sizes = [7, 5, 4];
        let values = [7.0, 5.0, 4.0];
        let (assignment, total) = graham_greedy(&slots, &sizes, &values);
        // 7 -> slot0 (10 left), 5 -> slot1 (6 left), 4 -> none (3,1 left).
        assert_eq!(assignment, vec![Some(0), Some(1), None]);
        assert!((total - 12.0).abs() < 1e-9);
    }

    #[test]
    fn merged_bound_is_at_least_graham() {
        let slots = [10, 6];
        let sizes = [7, 5, 4];
        let values = [7.0, 5.0, 4.0];
        let (_, graham) = graham_greedy(&slots, &sizes, &values);
        let ub = merged_upper_bound(&slots, &sizes, &values);
        assert!(ub >= graham - 1e-9);
        // Merged capacity 16 fits everything: 16.0.
        assert!((ub - 16.0).abs() < 1e-9);
    }

    fn random_items(rng: &mut SimRng, max_n: u64) -> (Vec<u64>, Vec<f64>, Vec<u64>) {
        let n = rng.uniform_u64(0, max_n) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| rng.uniform_u64(1, 30)).collect();
        let raw_values: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 100)).collect();
        let values: Vec<f64> = raw_values.iter().map(|&v| v as f64).collect();
        (sizes, values, raw_values)
    }

    #[test]
    fn bnb_matches_dp_reference() {
        let mut rng = SimRng::seed_from_u64(0x1CA7);
        for _ in 0..120 {
            let (sizes, values, raw_values) = random_items(&mut rng, 14);
            let capacity = rng.uniform_u64(0, 120);
            let sol = solve_knapsack(capacity, &sizes, &values);
            // Integer DP reference.
            let cap = capacity as usize;
            let mut dp = vec![0u64; cap + 1];
            for i in 0..sizes.len() {
                let (sz, v) = (sizes[i] as usize, raw_values[i]);
                for c in (sz..=cap).rev() {
                    dp[c] = dp[c].max(dp[c - sz] + v);
                }
            }
            assert!(
                (sol.value - dp[cap] as f64).abs() < 1e-6,
                "bnb {} vs dp {}",
                sol.value,
                dp[cap]
            );
            // Chosen set is feasible and value-consistent.
            let sz: u64 = sol.chosen.iter().map(|&i| sizes[i]).sum();
            assert!(sz <= capacity);
            let val: f64 = sol.chosen.iter().map(|&i| values[i]).sum();
            assert!((val - sol.value).abs() < 1e-6);
        }
    }

    #[test]
    fn lp_bound_always_dominates() {
        let mut rng = SimRng::seed_from_u64(0x1CA8);
        for _ in 0..120 {
            let (sizes, values, _) = random_items(&mut rng, 12);
            let capacity = rng.uniform_u64(0, 120);
            let lp = fractional_upper_bound(capacity, &sizes, &values);
            let ip = solve_knapsack(capacity, &sizes, &values).value;
            assert!(lp >= ip - 1e-6);
        }
    }
}
