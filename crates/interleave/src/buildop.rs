//! Build-index operators as the interleavers see them.

use flowtune_common::{BuildOpId, OpId, SimDuration};
use flowtune_sched::BuildRef;

/// Synthetic [`OpId`]s for build operators start here so they can never
/// collide with dataflow operator ids (dataflows are ~100 operators).
pub const BUILD_OP_ID_BASE: u32 = 1_000_000;

/// One pending build-index operator: builds one index partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildOp {
    /// Identity within the pending queue.
    pub id: BuildOpId,
    /// The index partition it builds.
    pub build: BuildRef,
    /// Estimated build time.
    pub duration: SimDuration,
    /// Gain of the index this operator contributes to (Eq. 3), used to
    /// rank operators inside knapsack packing.
    pub gain: f64,
}

impl BuildOp {
    /// The synthetic schedule-level op id for this build operator.
    pub fn schedule_op_id(&self) -> OpId {
        OpId(BUILD_OP_ID_BASE + self.id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::IndexId;

    #[test]
    fn schedule_ids_are_disjoint_from_dataflow_ids() {
        let op = BuildOp {
            id: BuildOpId(5),
            build: BuildRef {
                index: IndexId(2),
                part: 7,
            },
            duration: SimDuration::from_secs(10),
            gain: 1.5,
        };
        assert_eq!(op.schedule_op_id(), OpId(BUILD_OP_ID_BASE + 5));
        assert!(op.schedule_op_id().0 > 100_000);
    }
}
