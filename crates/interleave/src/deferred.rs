//! Deferred batch building — the paper's §7 future work: "building
//! indexes in a delayed manner for scenarios where idle slots are
//! short".
//!
//! Build operators that do not fit any idle slot accumulate in a
//! [`DeferredBuildQueue`]. When the total (dollar) gain of the queue
//! exceeds the price of leasing a dedicated container for the quanta the
//! batch needs — by a safety factor — the queue flushes into a
//! [`BatchBuild`]: the operators run back-to-back on a paid container.
//! Unlike slot interleaving this *does* cost money, but only when the
//! accumulated gain provably covers it.

use flowtune_common::{pricing, Money, SimDuration};

use crate::buildop::BuildOp;

/// A flushed batch: operators to run back-to-back on a dedicated
/// container, with its lease length and price.
#[derive(Debug, Clone)]
pub struct BatchBuild {
    /// Operators in descending gain order.
    pub ops: Vec<BuildOp>,
    /// Whole quanta the dedicated container must be leased for.
    pub quanta: u64,
    /// Lease price.
    pub cost: Money,
}

impl BatchBuild {
    /// Total build time of the batch.
    pub fn duration(&self) -> SimDuration {
        self.ops.iter().map(|o| o.duration).sum()
    }
}

/// Accumulates unplaceable build operators until a batch pays for
/// itself.
#[derive(Debug)]
pub struct DeferredBuildQueue {
    pending: Vec<BuildOp>,
    quantum: SimDuration,
    vm_price: Money,
    /// Flush when `total gain >= safety_factor × lease cost`.
    pub safety_factor: f64,
}

impl DeferredBuildQueue {
    /// Create an empty queue for the given billing model.
    pub fn new(quantum: SimDuration, vm_price: Money) -> Self {
        DeferredBuildQueue {
            pending: Vec::new(),
            quantum,
            vm_price,
            safety_factor: 1.5,
        }
    }

    /// Add operators that failed to interleave. Duplicates (same build
    /// ref) keep the higher gain.
    pub fn defer(&mut self, ops: impl IntoIterator<Item = BuildOp>) {
        for op in ops {
            // flowtune-allow(obs-discipline): deferred batches are off in the smoke run's config
            flowtune_obs::count("interleave.deferred", 1);
            match self.pending.iter_mut().find(|p| p.build == op.build) {
                Some(existing) => existing.gain = existing.gain.max(op.gain),
                None => self.pending.push(op),
            }
        }
    }

    /// Remove a build ref (it got built through a slot after all, or its
    /// index was deleted).
    pub fn remove(&mut self, build: &flowtune_sched::BuildRef) {
        self.pending.retain(|p| p.build != *build);
    }

    /// Queued operators.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Sum of queued gains (dollars).
    pub fn total_gain(&self) -> f64 {
        self.pending.iter().map(|p| p.gain).sum()
    }

    /// Sum of queued build durations.
    pub fn total_duration(&self) -> SimDuration {
        self.pending.iter().map(|p| p.duration).sum()
    }

    /// The lease a full flush would need.
    pub fn flush_cost(&self) -> Money {
        let quanta = pricing::quanta_to_cover(self.total_duration(), self.quantum);
        pricing::compute_cost(quanta, self.vm_price)
    }

    /// Flush if the accumulated gain covers the dedicated lease by the
    /// safety factor. Ops are drained in descending gain order; the
    /// batch fills whole quanta (no point paying for a quantum and
    /// leaving it idle), so low-gain stragglers may stay queued.
    pub fn try_flush(&mut self) -> Option<BatchBuild> {
        if self.pending.is_empty() {
            return None;
        }
        let cost = self.flush_cost();
        if self.total_gain() < self.safety_factor * cost.as_dollars() {
            return None;
        }
        self.pending.sort_by(|a, b| b.gain.total_cmp(&a.gain));
        let quanta = pricing::quanta_to_cover(self.total_duration(), self.quantum);
        let budget = self.quantum * quanta;
        let mut used = SimDuration::ZERO;
        let mut ops = Vec::new();
        let mut rest = Vec::new();
        for op in self.pending.drain(..) {
            if used + op.duration <= budget {
                used += op.duration;
                ops.push(op);
            } else {
                rest.push(op);
            }
        }
        self.pending = rest;
        let quanta = pricing::quanta_to_cover(used, self.quantum);
        let batch_cost = pricing::compute_cost(quanta, self.vm_price);
        flowtune_obs::obs_event!(
            "interleave.deferred_flush",
            ops = ops.len(),
            still_queued = self.pending.len(),
            quanta = quanta,
            cost_dollars = batch_cost.as_dollars(),
        );
        flowtune_obs::count("interleave.deferred_flushes", 1); // flowtune-allow(obs-discipline): deferred batches are off in the smoke run's config (covers next line too)
        flowtune_obs::count("interleave.deferred_built", ops.len() as u64);
        Some(BatchBuild {
            ops,
            quanta,
            cost: batch_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::{BuildOpId, IndexId};
    use flowtune_sched::BuildRef;

    const Q: SimDuration = SimDuration::from_secs(60);

    fn op(i: u32, secs: u64, gain: f64) -> BuildOp {
        BuildOp {
            id: BuildOpId(i),
            build: BuildRef {
                index: IndexId(i),
                part: 0,
            },
            duration: SimDuration::from_secs(secs),
            gain,
        }
    }

    fn queue() -> DeferredBuildQueue {
        DeferredBuildQueue::new(Q, Money::from_dollars(0.1))
    }

    #[test]
    fn accumulates_until_profitable() {
        let mut q = queue();
        // 30 s of builds -> 1 quantum lease = $0.1; threshold 1.5x = $0.15.
        q.defer([op(0, 30, 0.05)]);
        assert!(
            q.try_flush().is_none(),
            "gain below threshold must not flush"
        );
        q.defer([op(1, 20, 0.2)]);
        let batch = q.try_flush().expect("now profitable");
        assert_eq!(batch.ops.len(), 2);
        assert_eq!(batch.quanta, 1);
        assert_eq!(batch.cost, Money::from_dollars(0.1));
        assert!(q.is_empty());
    }

    #[test]
    fn duplicates_keep_best_gain() {
        let mut q = queue();
        q.defer([op(0, 10, 0.1)]);
        q.defer([op(0, 10, 0.4)]);
        assert_eq!(q.len(), 1);
        assert!((q.total_gain() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn batch_is_gain_ordered_and_quantum_packed() {
        let mut q = queue();
        q.defer([op(0, 50, 0.5), op(1, 40, 2.0), op(2, 45, 1.0)]);
        // 135 s -> 3 quanta ($0.3); gain 3.5 >> 0.45.
        let batch = q.try_flush().unwrap();
        let gains: Vec<f64> = batch.ops.iter().map(|o| o.gain).collect();
        assert_eq!(gains, vec![2.0, 1.0, 0.5]);
        assert_eq!(batch.quanta, 3);
    }

    #[test]
    fn remove_unqueues() {
        let mut q = queue();
        q.defer([op(0, 10, 1.0), op(1, 10, 1.0)]);
        q.remove(&BuildRef {
            index: IndexId(0),
            part: 0,
        });
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_never_flushes() {
        let mut q = queue();
        assert!(q.try_flush().is_none());
        assert_eq!(q.flush_cost(), Money::ZERO);
    }
}
