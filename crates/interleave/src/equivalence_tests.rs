//! Golden equivalence suite: the memoized-bound + dominance-pruning
//! knapsack solver must produce **element-wise identical** solutions to
//! the retained pre-optimization implementation ([`crate::reference`])
//! — same chosen index set, bit-identical value, same packed size —
//! across capacities and item counts, and the whole Algorithm 2 pack
//! built on it must place the same build operators into the same slots
//! (DESIGN §5i).
//!
//! Any behavioural drift in the state-table rework shows up here as a
//! precise solution diff, not as a downstream gain anomaly.

// Redundant with the `#[cfg(test)]` on the module declaration, but
// carries the gate in-file where flowtune-analyze's per-file scan
// (panic-hygiene test exemption) can see it.
#![cfg(test)]

use flowtune_common::{BuildOpId, IndexId, SimDuration, SimRng};
use flowtune_dataflow::App;
use flowtune_sched::{BuildRef, Schedule, SchedulerConfig, SkylineScheduler};

use crate::buildop::BuildOp;
use crate::knapsack::{solve_knapsack_budgeted, KnapsackSolution};
use crate::lp::LpInterleaver;
use crate::reference;

const Q: SimDuration = SimDuration::from_secs(60);

/// Element-wise solution equality: chosen set, value (bit-identical —
/// both solvers accumulate the same f64 sums along the same take
/// path), size. Node counts legitimately differ (that is the point).
fn assert_same(got: &KnapsackSolution, want: &KnapsackSolution, label: &str) {
    assert_eq!(got.chosen, want.chosen, "{label}: chosen sets differ");
    assert!(
        got.value == want.value,
        "{label}: values differ ({} vs {})",
        got.value,
        want.value
    );
    assert_eq!(got.size, want.size, "{label}: packed sizes differ");
}

fn random_instance(rng: &mut SimRng, max_n: u64, max_size: u64) -> (Vec<u64>, Vec<f64>) {
    let n = rng.uniform_u64(0, max_n) as usize;
    let sizes: Vec<u64> = (0..n).map(|_| rng.uniform_u64(1, max_size)).collect();
    let values: Vec<f64> = (0..n).map(|_| rng.uniform_u64(0, 100) as f64).collect();
    (sizes, values)
}

#[test]
fn equivalent_across_capacities_and_item_counts() {
    let mut rng = SimRng::seed_from_u64(0x1B01);
    for n in [0u64, 2, 5, 9, 14, 18] {
        for capacity in [0u64, 1, 13, 40, 90, 200] {
            let (sizes, values) = random_instance(&mut rng, n + 1, 30);
            let got = solve_knapsack_budgeted(capacity, &sizes, &values, 2_000_000);
            let want = reference::solve_knapsack_budgeted(capacity, &sizes, &values, 2_000_000);
            assert_same(&got, &want, &format!("n<={n} cap={capacity}"));
        }
    }
}

#[test]
fn dominance_pruning_never_changes_the_chosen_set() {
    // Collision-heavy instances: sizes drawn from 1..=6 so many DFS
    // prefixes land on the same (depth, remaining) state and the
    // dominance table fires constantly. 18 items keeps the reference's
    // worst case (< 2^19 nodes) far under the node budget, so both
    // searches run to completion and must agree exactly.
    let mut rng = SimRng::seed_from_u64(0x1B02);
    for round in 0..200 {
        let (sizes, values) = random_instance(&mut rng, 18, 6);
        let capacity = rng.uniform_u64(0, 40);
        let got = solve_knapsack_budgeted(capacity, &sizes, &values, 2_000_000);
        let want = reference::solve_knapsack_budgeted(capacity, &sizes, &values, 2_000_000);
        assert_same(&got, &want, &format!("round {round}"));
        // The optimized visit sequence is a subsequence of the
        // reference's, so pruning can only shrink the node count.
        assert!(
            got.nodes <= want.nodes,
            "round {round}: optimized expanded more nodes ({} vs {})",
            got.nodes,
            want.nodes
        );
    }
}

#[test]
fn dominance_collapses_equal_density_instances() {
    // 16 identical items (size 3, value 7) with capacity 10: equal
    // densities defeat bound pruning and the fractional root bound
    // (23.33) is integrally unreachable, so the reference re-explores
    // every C(16, k) prefix while the state table collapses them to
    // O(n * capacity) states.
    let sizes = [3u64; 16];
    let values = [7.0f64; 16];
    let got = solve_knapsack_budgeted(10, &sizes, &values, 2_000_000);
    let want = reference::solve_knapsack_budgeted(10, &sizes, &values, 2_000_000);
    assert_same(&got, &want, "equal-density");
    assert!((got.value - 21.0).abs() < 1e-9, "optimum is 3 items");
    assert!(got.pruned > 0, "dominance never fired");
    assert!(
        got.nodes < want.nodes,
        "state table should shrink the search ({} vs {})",
        got.nodes,
        want.nodes
    );
}

#[test]
fn node_budget_degradation_path_is_identical() {
    // Budget 0: both searches charge the root visit, exhaust the
    // budget, and fall back to the greedy incumbent — element-wise
    // identical including the node count (the state table never gets a
    // look-in before the budget check).
    let mut rng = SimRng::seed_from_u64(0x1B03);
    for round in 0..40 {
        let (sizes, values) = random_instance(&mut rng, 14, 30);
        let capacity = rng.uniform_u64(0, 120);
        let got = solve_knapsack_budgeted(capacity, &sizes, &values, 0);
        let want = reference::solve_knapsack_budgeted(capacity, &sizes, &values, 0);
        assert_same(&got, &want, &format!("budget0 round {round}"));
        assert_eq!(got.nodes, want.nodes, "budget0 round {round}: node counts");
        assert_eq!(got.pruned, 0, "budget0 round {round}: nothing was searched");
    }
}

#[test]
fn budgeted_solves_never_fall_below_the_reference() {
    // Under a mid-size budget the searches spend their nodes
    // differently, but the optimized visit order is the reference's
    // with useless subtrees removed — at equal budget it has always
    // seen every incumbent update the reference has, so its value
    // dominates. Both stay feasible.
    let mut rng = SimRng::seed_from_u64(0x1B04);
    for round in 0..60 {
        let (sizes, values) = random_instance(&mut rng, 16, 8);
        let capacity = rng.uniform_u64(0, 60);
        for budget in [5usize, 17, 64] {
            let got = solve_knapsack_budgeted(capacity, &sizes, &values, budget);
            let want = reference::solve_knapsack_budgeted(capacity, &sizes, &values, budget);
            assert!(
                got.value >= want.value - 1e-12,
                "round {round} budget {budget}: optimized {} < reference {}",
                got.value,
                want.value
            );
            assert!(got.size <= capacity, "round {round} budget {budget}");
            let val: f64 = got.chosen.iter().map(|&i| values[i]).sum();
            assert!(
                (val - got.value).abs() < 1e-6,
                "round {round} budget {budget}: value inconsistent with chosen set"
            );
        }
    }
}

/// A per-schedule pack outcome: what was placed, and the schedule it
/// left behind. Element-wise equality of these pins the whole
/// Algorithm 2 loop.
#[derive(Debug, PartialEq)]
struct PackResult {
    placed: Vec<BuildOp>,
    schedule: Schedule,
}

fn build_ops(n: u32, seed: u64) -> Vec<BuildOp> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| BuildOp {
            id: BuildOpId(i),
            build: BuildRef {
                index: IndexId(i / 4),
                part: i % 4,
            },
            duration: SimDuration::from_secs(1 + rng.uniform_u64(0, 40)),
            gain: 0.5 + rng.uniform_u64(0, 1000) as f64 / 100.0,
        })
        .collect()
}

#[test]
fn pack_equivalent_on_real_schedules() {
    for (app, n_ops, n_builds, seed) in [
        (App::Montage, 60, 24u32, 0x1B05u64),
        (App::Cybershake, 80, 64, 0x1B06),
        (App::Ligo, 60, 120, 0x1B07),
    ] {
        let mut rng = SimRng::seed_from_u64(seed);
        let dag = app.generate(n_ops, &[], &mut rng);
        let scheduler = SkylineScheduler::new(SchedulerConfig::default());
        let skyline = scheduler.schedule(&dag);
        let pending = build_ops(n_builds, seed ^ 0xFF);
        for (i, s) in skyline.iter().enumerate() {
            let label = format!("{}:{n_ops}ops:{n_builds}builds:sched{i}", app.name());
            let mut opt_schedule = s.clone();
            let opt_placed = LpInterleaver::new(Q).interleave(&mut opt_schedule, &pending);
            let mut ref_schedule = s.clone();
            let ref_placed = reference::pack_reference(Q, &mut ref_schedule, &pending);
            let got = PackResult {
                placed: opt_placed,
                schedule: opt_schedule,
            };
            let want = PackResult {
                placed: ref_placed,
                schedule: ref_schedule,
            };
            assert_eq!(got, want, "{label}: pack diverged");
        }
    }
}
