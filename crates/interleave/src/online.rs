//! Online interleaving — §5.3.2.
//!
//! A thin orchestration layer over
//! [`SkylineScheduler::schedule_with_optional`]: build operators are
//! marked *optional* and scheduled together with the dataflow operators.
//! Compared with LP interleaving, the fragmentation information is not
//! available up front, so fewer build operators get placed (Fig. 8) —
//! but the optional operators participate in skyline tie-breaking, which
//! can steer the search to different (sometimes cheaper) schedules.

use flowtune_dataflow::Dag;
use flowtune_sched::{OptionalOp, Schedule, SkylineScheduler};

use crate::buildop::BuildOp;

/// The online interleaver.
#[derive(Debug, Clone, Default)]
pub struct OnlineInterleaver {
    /// The underlying skyline scheduler.
    pub scheduler: SkylineScheduler,
}

impl OnlineInterleaver {
    /// Create an online interleaver around a configured scheduler.
    pub fn new(scheduler: SkylineScheduler) -> Self {
        OnlineInterleaver { scheduler }
    }

    /// Schedule the dataflow and the pending build operators together.
    /// Build operators are offered in decreasing gain order.
    pub fn schedule(&self, dag: &Dag, pending: &[BuildOp]) -> Vec<Schedule> {
        let mut ranked: Vec<&BuildOp> = pending.iter().collect();
        ranked.sort_by(|a, b| b.gain.total_cmp(&a.gain));
        let optional: Vec<OptionalOp> = ranked
            .iter()
            .map(|b| OptionalOp {
                op: b.schedule_op_id(),
                duration: b.duration,
                build: b.build,
            })
            .collect();
        let skyline = self.scheduler.schedule_with_optional(dag, &optional);
        // Mirror the LP path's offered/placed accounting so Fig. 8's
        // online-vs-LP gap is readable straight off the metrics summary.
        // flowtune-allow(obs-discipline): the smoke run schedules via the LP path, never the online interleaver
        flowtune_obs::count("interleave.online_offered", optional.len() as u64);
        let placed = skyline
            .iter()
            .map(|s| s.build_assignments().count())
            .max()
            .unwrap_or(0);
        // flowtune-allow(obs-discipline): the smoke run schedules via the LP path, never the online interleaver
        flowtune_obs::count("interleave.online_placed", placed as u64);
        skyline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::LpInterleaver;
    use flowtune_common::{BuildOpId, IndexId, SimDuration, SimRng};
    use flowtune_dataflow::App;
    use flowtune_sched::BuildRef;

    fn pending(n: u32) -> Vec<BuildOp> {
        (0..n)
            .map(|i| BuildOp {
                id: BuildOpId(i),
                build: BuildRef {
                    index: IndexId(i / 4),
                    part: i % 4,
                },
                duration: SimDuration::from_secs(4 + (i as u64 * 7) % 25),
                gain: 1.0 + (i as f64 * 0.37) % 5.0,
            })
            .collect()
    }

    #[test]
    fn online_schedules_are_valid_and_carry_builds() {
        let mut rng = SimRng::seed_from_u64(5);
        let dag = App::Montage.generate(100, &[], &mut rng);
        let il = OnlineInterleaver::default();
        let skyline = il.schedule(&dag, &pending(40));
        assert!(!skyline.is_empty());
        let mut any_builds = 0usize;
        for s in &skyline {
            s.validate(&dag).unwrap();
            any_builds += s.build_assignments().count();
        }
        assert!(
            any_builds > 0,
            "online interleaving never placed a build op"
        );
    }

    #[test]
    fn lp_places_at_least_as_many_as_online_on_same_schedule_count() {
        // The paper's Fig. 8 observation: LP sees the fragmentation up
        // front and schedules significantly more build operators.
        let mut rng = SimRng::seed_from_u64(7);
        let dag = App::Montage.generate(100, &[], &mut rng);
        let ops = pending(60);

        let il = OnlineInterleaver::default();
        let online_best = il
            .schedule(&dag, &ops)
            .iter()
            .map(|s| s.build_assignments().count())
            .max()
            .unwrap();

        let mut lp_skyline = il.scheduler.schedule(&dag);
        let lp = LpInterleaver::new(il.scheduler.config.quantum);
        let lp_best = lp
            .interleave_skyline(&mut lp_skyline, &ops)
            .iter()
            .map(Vec::len)
            .max()
            .unwrap();
        assert!(
            lp_best >= online_best,
            "LP placed {lp_best}, online placed {online_best}"
        );
    }

    #[test]
    fn empty_pending_degenerates_to_plain_scheduling() {
        let mut rng = SimRng::seed_from_u64(8);
        let dag = App::Ligo.generate(60, &[], &mut rng);
        let il = OnlineInterleaver::default();
        let a = il.schedule(&dag, &[]);
        let b = il.scheduler.schedule(&dag);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.makespan(), y.makespan());
        }
    }
}
