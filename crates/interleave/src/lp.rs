//! Linear-program-based interleaving — Algorithm 2.
//!
//! The dataflow is scheduled first (the skyline is an input); then, for
//! each schedule, the idle slots are enumerated in decreasing size and a
//! 0/1 knapsack (Algorithm 3) is solved per slot over the still-unplaced
//! build operators. Within a slot, operators run in decreasing gain
//! order so that when a quantum expires or a dataflow operator arrives
//! early (runtime estimation error), the *least* useful build is the one
//! that gets stopped.

use flowtune_common::SimDuration;
use flowtune_sched::{idle_slots, Schedule};

use crate::buildop::BuildOp;
use crate::knapsack::solve_knapsack;

/// The LP interleaver.
#[derive(Debug, Clone)]
pub struct LpInterleaver {
    /// Billing quantum (defines leased spans and slot boundaries).
    pub quantum: SimDuration,
}

impl LpInterleaver {
    /// Create an interleaver.
    pub fn new(quantum: SimDuration) -> Self {
        LpInterleaver { quantum }
    }

    /// Pack build operators into one schedule's idle slots. Returns the
    /// build ops actually placed (a subset of `pending`); the schedule
    /// is extended in place with the corresponding optional assignments.
    pub fn interleave(&self, schedule: &mut Schedule, pending: &[BuildOp]) -> Vec<BuildOp> {
        let mut slots = idle_slots(schedule, self.quantum);
        slots.sort_by_key(|s| std::cmp::Reverse(s.duration()));
        let slots_offered = slots.len();
        let mut slots_filled = 0usize;
        let mut knapsack_nodes = 0u64;
        let mut knapsack_pruned = 0u64;
        let mut remaining: Vec<BuildOp> = pending.to_vec();
        let mut placed = Vec::new();
        for slot in slots {
            if remaining.is_empty() {
                break;
            }
            let sizes: Vec<u64> = remaining.iter().map(|b| b.duration.as_millis()).collect();
            let gains: Vec<f64> = remaining.iter().map(|b| b.gain).collect();
            let sol = solve_knapsack(slot.duration().as_millis(), &sizes, &gains);
            knapsack_nodes += sol.nodes as u64;
            knapsack_pruned += sol.pruned as u64;
            flowtune_obs::observe("interleave.knapsack_nodes", sol.nodes as f64);
            flowtune_obs::observe("interleave.knapsack_pruned", sol.pruned as f64);
            if sol.chosen.is_empty() {
                continue;
            }
            slots_filled += 1;
            // Schedule the chosen ops inside the slot by decreasing gain.
            let mut chosen: Vec<BuildOp> = sol.chosen.iter().map(|&i| remaining[i]).collect();
            chosen.sort_by(|a, b| b.gain.total_cmp(&a.gain));
            let mut cursor = slot.start;
            for op in &chosen {
                #[allow(clippy::expect_used)]
                schedule
                    .try_insert_build(
                        slot.container,
                        cursor,
                        cursor + op.duration,
                        op.schedule_op_id(),
                        op.build,
                        self.quantum,
                    )
                    // flowtune-allow(panic-hygiene): the knapsack capacity equals the slot, so chosen ops fit it
                    .expect("knapsack-chosen ops must fit their slot");
                cursor += op.duration;
            }
            // Remove placed ops from the pool.
            let placed_ids: std::collections::BTreeSet<_> = chosen.iter().map(|b| b.id).collect();
            remaining.retain(|b| !placed_ids.contains(&b.id));
            placed.extend(chosen);
        }
        flowtune_obs::obs_event!(
            "interleave.pack",
            slots_offered = slots_offered,
            slots_filled = slots_filled,
            pending = pending.len(),
            placed = placed.len(),
            knapsack_nodes = knapsack_nodes,
            knapsack_pruned = knapsack_pruned,
        );
        flowtune_obs::count("interleave.slots_offered", slots_offered as u64);
        flowtune_obs::count("interleave.slots_filled", slots_filled as u64);
        flowtune_obs::count("interleave.placed", placed.len() as u64);
        // flowtune-allow(obs-discipline): intentional dual recording — per-slot distribution above, per-call counter here; the golden pins both
        flowtune_obs::count("interleave.knapsack_nodes", knapsack_nodes);
        placed
    }

    /// Algorithm 2 over a whole skyline: interleave every schedule
    /// independently (each starts from the full pending pool). Returns
    /// per-schedule placed ops.
    pub fn interleave_skyline(
        &self,
        skyline: &mut [Schedule],
        pending: &[BuildOp],
    ) -> Vec<Vec<BuildOp>> {
        skyline
            .iter_mut()
            .map(|s| self.interleave(s, pending))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::{BuildOpId, ContainerId, IndexId, Money, OpId, SimRng, SimTime};
    use flowtune_dataflow::App;
    use flowtune_sched::{
        total_fragmentation, Assignment, BuildRef, SchedulerConfig, SkylineScheduler,
    };

    const Q: SimDuration = SimDuration::from_secs(60);

    fn build_op(i: u32, secs: u64, gain: f64) -> BuildOp {
        BuildOp {
            id: BuildOpId(i),
            build: BuildRef {
                index: IndexId(i),
                part: 0,
            },
            duration: SimDuration::from_secs(secs),
            gain,
        }
    }

    fn gapy_schedule() -> Schedule {
        // c0: [0,10) busy, [10,40) idle, [40,50) busy, [50,60) idle tail.
        Schedule::from_assignments(vec![
            Assignment {
                op: OpId(0),
                container: ContainerId(0),
                start: SimTime::ZERO,
                end: SimTime::from_secs(10),
                build: None,
            },
            Assignment {
                op: OpId(1),
                container: ContainerId(0),
                start: SimTime::from_secs(40),
                end: SimTime::from_secs(50),
                build: None,
            },
        ])
    }

    #[test]
    fn fills_largest_slot_first() {
        let mut s = gapy_schedule();
        let ops = vec![build_op(0, 25, 10.0), build_op(1, 8, 5.0)];
        let placed = LpInterleaver::new(Q).interleave(&mut s, &ops);
        assert_eq!(placed.len(), 2);
        // The 25 s op only fits the 30 s middle gap; the 8 s op takes the
        // tail.
        let builds: Vec<_> = s.build_assignments().collect();
        assert_eq!(builds.len(), 2);
        assert_no_overlap(&s);
    }

    #[test]
    fn money_and_time_are_unchanged() {
        let mut s = gapy_schedule();
        let before_time = s.makespan();
        let before_money = s.money(Q, Money::from_dollars(0.1));
        let ops: Vec<BuildOp> = (0..10).map(|i| build_op(i, 7, 1.0 + i as f64)).collect();
        LpInterleaver::new(Q).interleave(&mut s, &ops);
        assert_eq!(s.makespan(), before_time);
        assert_eq!(s.money(Q, Money::from_dollars(0.1)), before_money);
    }

    #[test]
    fn fragmentation_drops_after_interleaving() {
        let mut s = gapy_schedule();
        let before = total_fragmentation(&s, Q);
        let ops: Vec<BuildOp> = (0..6).map(|i| build_op(i, 9, 5.0)).collect();
        LpInterleaver::new(Q).interleave(&mut s, &ops);
        let after = total_fragmentation(&s, Q);
        assert!(after < before, "fragmentation {before} -> {after}");
    }

    #[test]
    fn prefers_higher_gain_when_capacity_is_scarce() {
        let mut s = gapy_schedule();
        // Both fit individually in the 30 s gap but not together.
        let ops = vec![build_op(0, 20, 1.0), build_op(1, 20, 50.0)];
        let placed = LpInterleaver::new(Q).interleave(&mut s, &ops);
        let placed_gains: Vec<f64> = placed.iter().map(|b| b.gain).collect();
        assert!(placed_gains.contains(&50.0));
        assert!(!placed_gains.contains(&1.0));
    }

    #[test]
    fn within_slot_order_is_by_descending_gain() {
        let mut s = gapy_schedule();
        let ops = vec![build_op(0, 10, 1.0), build_op(1, 10, 9.0)];
        LpInterleaver::new(Q).interleave(&mut s, &ops);
        let mut builds: Vec<_> = s.build_assignments().copied().collect();
        builds.sort_by_key(|a| a.start);
        // Higher gain (id 1) runs first.
        assert_eq!(builds[0].op, OpId(crate::buildop::BUILD_OP_ID_BASE + 1));
    }

    #[test]
    fn interleaves_real_scientific_schedules() {
        let mut rng = SimRng::seed_from_u64(3);
        let dag = App::Montage.generate(100, &[], &mut rng);
        let scheduler = SkylineScheduler::new(SchedulerConfig::default());
        let mut skyline = scheduler.schedule(&dag);
        let ops: Vec<BuildOp> = (0..50)
            .map(|i| build_op(i, 5 + (i as u64 % 20), 1.0 + i as f64 * 0.1))
            .collect();
        let placed = LpInterleaver::new(Q).interleave_skyline(&mut skyline, &ops);
        let max_placed = placed.iter().map(Vec::len).max().unwrap();
        assert!(max_placed > 0, "no build op placed in any schedule");
        for s in &skyline {
            s.validate(&dag).unwrap();
        }
    }

    /// Test helper: assert no overlapping assignments per container.
    fn assert_no_overlap(s: &Schedule) {
        for c in s.containers() {
            let t = s.on_container(c);
            for w in t.windows(2) {
                assert!(w[1].start >= w[0].end, "overlap on {c}");
            }
        }
    }
}
