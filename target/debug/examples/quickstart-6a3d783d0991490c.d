/root/repo/target/debug/examples/quickstart-6a3d783d0991490c.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6a3d783d0991490c: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
