/root/repo/target/debug/examples/phase_adaptivity-a3a25d94950836ac.d: crates/core/../../examples/phase_adaptivity.rs

/root/repo/target/debug/examples/phase_adaptivity-a3a25d94950836ac: crates/core/../../examples/phase_adaptivity.rs

crates/core/../../examples/phase_adaptivity.rs:
