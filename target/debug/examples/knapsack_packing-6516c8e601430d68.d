/root/repo/target/debug/examples/knapsack_packing-6516c8e601430d68.d: crates/core/../../examples/knapsack_packing.rs

/root/repo/target/debug/examples/knapsack_packing-6516c8e601430d68: crates/core/../../examples/knapsack_packing.rs

crates/core/../../examples/knapsack_packing.rs:
