/root/repo/target/debug/examples/knapsack_packing-191b0b8e1b9321ec.d: crates/core/../../examples/knapsack_packing.rs

/root/repo/target/debug/examples/knapsack_packing-191b0b8e1b9321ec: crates/core/../../examples/knapsack_packing.rs

crates/core/../../examples/knapsack_packing.rs:
