/root/repo/target/debug/examples/quickstart-88cc958355a2994c.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-88cc958355a2994c: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
