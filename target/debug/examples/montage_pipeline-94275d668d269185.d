/root/repo/target/debug/examples/montage_pipeline-94275d668d269185.d: crates/core/../../examples/montage_pipeline.rs

/root/repo/target/debug/examples/montage_pipeline-94275d668d269185: crates/core/../../examples/montage_pipeline.rs

crates/core/../../examples/montage_pipeline.rs:
