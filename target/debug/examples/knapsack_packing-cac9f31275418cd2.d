/root/repo/target/debug/examples/knapsack_packing-cac9f31275418cd2.d: crates/core/../../examples/knapsack_packing.rs

/root/repo/target/debug/examples/knapsack_packing-cac9f31275418cd2: crates/core/../../examples/knapsack_packing.rs

crates/core/../../examples/knapsack_packing.rs:
