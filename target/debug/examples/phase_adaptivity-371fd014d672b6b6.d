/root/repo/target/debug/examples/phase_adaptivity-371fd014d672b6b6.d: crates/core/../../examples/phase_adaptivity.rs

/root/repo/target/debug/examples/phase_adaptivity-371fd014d672b6b6: crates/core/../../examples/phase_adaptivity.rs

crates/core/../../examples/phase_adaptivity.rs:
