/root/repo/target/debug/examples/montage_pipeline-f81573a37d6f6f54.d: crates/core/../../examples/montage_pipeline.rs

/root/repo/target/debug/examples/montage_pipeline-f81573a37d6f6f54: crates/core/../../examples/montage_pipeline.rs

crates/core/../../examples/montage_pipeline.rs:
