/root/repo/target/debug/examples/cost_explorer-0d7092623e266d3f.d: crates/core/../../examples/cost_explorer.rs

/root/repo/target/debug/examples/cost_explorer-0d7092623e266d3f: crates/core/../../examples/cost_explorer.rs

crates/core/../../examples/cost_explorer.rs:
