/root/repo/target/debug/examples/cost_explorer-d5f6d188a27789d9.d: crates/core/../../examples/cost_explorer.rs

/root/repo/target/debug/examples/cost_explorer-d5f6d188a27789d9: crates/core/../../examples/cost_explorer.rs

crates/core/../../examples/cost_explorer.rs:
