/root/repo/target/debug/examples/quickstart-dd6ec54d59d10a71.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-dd6ec54d59d10a71: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
