/root/repo/target/debug/examples/montage_pipeline-de1633628fdff497.d: crates/core/../../examples/montage_pipeline.rs

/root/repo/target/debug/examples/montage_pipeline-de1633628fdff497: crates/core/../../examples/montage_pipeline.rs

crates/core/../../examples/montage_pipeline.rs:
