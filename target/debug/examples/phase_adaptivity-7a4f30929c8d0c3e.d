/root/repo/target/debug/examples/phase_adaptivity-7a4f30929c8d0c3e.d: crates/core/../../examples/phase_adaptivity.rs

/root/repo/target/debug/examples/phase_adaptivity-7a4f30929c8d0c3e: crates/core/../../examples/phase_adaptivity.rs

crates/core/../../examples/phase_adaptivity.rs:
