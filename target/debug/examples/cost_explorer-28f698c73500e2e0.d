/root/repo/target/debug/examples/cost_explorer-28f698c73500e2e0.d: crates/core/../../examples/cost_explorer.rs

/root/repo/target/debug/examples/cost_explorer-28f698c73500e2e0: crates/core/../../examples/cost_explorer.rs

crates/core/../../examples/cost_explorer.rs:
