/root/repo/target/debug/deps/flowtune_analyze-a10e0158412d1100.d: crates/analyze/src/main.rs

/root/repo/target/debug/deps/flowtune_analyze-a10e0158412d1100: crates/analyze/src/main.rs

crates/analyze/src/main.rs:
