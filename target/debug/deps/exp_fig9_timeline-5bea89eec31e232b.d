/root/repo/target/debug/deps/exp_fig9_timeline-5bea89eec31e232b.d: crates/bench/src/bin/exp_fig9_timeline.rs

/root/repo/target/debug/deps/exp_fig9_timeline-5bea89eec31e232b: crates/bench/src/bin/exp_fig9_timeline.rs

crates/bench/src/bin/exp_fig9_timeline.rs:
