/root/repo/target/debug/deps/exp_ablation_adaptive_d-584894f9a7733ad0.d: crates/bench/src/bin/exp_ablation_adaptive_d.rs

/root/repo/target/debug/deps/exp_ablation_adaptive_d-584894f9a7733ad0: crates/bench/src/bin/exp_ablation_adaptive_d.rs

crates/bench/src/bin/exp_ablation_adaptive_d.rs:
