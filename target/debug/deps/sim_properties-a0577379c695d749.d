/root/repo/target/debug/deps/sim_properties-a0577379c695d749.d: crates/cloud/tests/sim_properties.rs

/root/repo/target/debug/deps/sim_properties-a0577379c695d749: crates/cloud/tests/sim_properties.rs

crates/cloud/tests/sim_properties.rs:
