/root/repo/target/debug/deps/exp_fig14_random_workload-e52be523d870a37e.d: crates/bench/src/bin/exp_fig14_random_workload.rs

/root/repo/target/debug/deps/exp_fig14_random_workload-e52be523d870a37e: crates/bench/src/bin/exp_fig14_random_workload.rs

crates/bench/src/bin/exp_fig14_random_workload.rs:
