/root/repo/target/debug/deps/exp_fig4_ranking-91eaabac425bcb5d.d: crates/bench/src/bin/exp_fig4_ranking.rs

/root/repo/target/debug/deps/exp_fig4_ranking-91eaabac425bcb5d: crates/bench/src/bin/exp_fig4_ranking.rs

crates/bench/src/bin/exp_fig4_ranking.rs:
