/root/repo/target/debug/deps/flowtune_obs-f8edd8679b198f07.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

/root/repo/target/debug/deps/flowtune_obs-f8edd8679b198f07: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
