/root/repo/target/debug/deps/schedule_pipeline-bdbd95a1dbc56560.d: crates/core/../../tests/schedule_pipeline.rs

/root/repo/target/debug/deps/schedule_pipeline-bdbd95a1dbc56560: crates/core/../../tests/schedule_pipeline.rs

crates/core/../../tests/schedule_pipeline.rs:
