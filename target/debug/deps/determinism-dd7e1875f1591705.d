/root/repo/target/debug/deps/determinism-dd7e1875f1591705.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-dd7e1875f1591705: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
