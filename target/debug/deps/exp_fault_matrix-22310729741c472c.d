/root/repo/target/debug/deps/exp_fault_matrix-22310729741c472c.d: crates/bench/src/bin/exp_fault_matrix.rs

/root/repo/target/debug/deps/exp_fault_matrix-22310729741c472c: crates/bench/src/bin/exp_fault_matrix.rs

crates/bench/src/bin/exp_fault_matrix.rs:
