/root/repo/target/debug/deps/exp_ablation_deferred-bba18a4e68382f12.d: crates/bench/src/bin/exp_ablation_deferred.rs

/root/repo/target/debug/deps/exp_ablation_deferred-bba18a4e68382f12: crates/bench/src/bin/exp_ablation_deferred.rs

crates/bench/src/bin/exp_ablation_deferred.rs:
