/root/repo/target/debug/deps/flowtune_query-56af64c3630f0a50.d: crates/query/src/lib.rs crates/query/src/group.rs crates/query/src/join.rs crates/query/src/lookup.rs crates/query/src/plan.rs crates/query/src/sort.rs crates/query/src/table6.rs crates/query/src/timer.rs

/root/repo/target/debug/deps/libflowtune_query-56af64c3630f0a50.rlib: crates/query/src/lib.rs crates/query/src/group.rs crates/query/src/join.rs crates/query/src/lookup.rs crates/query/src/plan.rs crates/query/src/sort.rs crates/query/src/table6.rs crates/query/src/timer.rs

/root/repo/target/debug/deps/libflowtune_query-56af64c3630f0a50.rmeta: crates/query/src/lib.rs crates/query/src/group.rs crates/query/src/join.rs crates/query/src/lookup.rs crates/query/src/plan.rs crates/query/src/sort.rs crates/query/src/table6.rs crates/query/src/timer.rs

crates/query/src/lib.rs:
crates/query/src/group.rs:
crates/query/src/join.rs:
crates/query/src/lookup.rs:
crates/query/src/plan.rs:
crates/query/src/sort.rs:
crates/query/src/table6.rs:
crates/query/src/timer.rs:
