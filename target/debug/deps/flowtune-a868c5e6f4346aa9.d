/root/repo/target/debug/deps/flowtune-a868c5e6f4346aa9.d: crates/core/src/bin/flowtune.rs

/root/repo/target/debug/deps/flowtune-a868c5e6f4346aa9: crates/core/src/bin/flowtune.rs

crates/core/src/bin/flowtune.rs:
