/root/repo/target/debug/deps/exp_fig13_adaptation-a141524af45f9601.d: crates/bench/src/bin/exp_fig13_adaptation.rs

/root/repo/target/debug/deps/exp_fig13_adaptation-a141524af45f9601: crates/bench/src/bin/exp_fig13_adaptation.rs

crates/bench/src/bin/exp_fig13_adaptation.rs:
