/root/repo/target/debug/deps/flowtune_sched-a7ba40f933116df1.d: crates/sched/src/lib.rs crates/sched/src/hetero.rs crates/sched/src/online_lb.rs crates/sched/src/schedule.rs crates/sched/src/skyline.rs crates/sched/src/slots.rs

/root/repo/target/debug/deps/libflowtune_sched-a7ba40f933116df1.rlib: crates/sched/src/lib.rs crates/sched/src/hetero.rs crates/sched/src/online_lb.rs crates/sched/src/schedule.rs crates/sched/src/skyline.rs crates/sched/src/slots.rs

/root/repo/target/debug/deps/libflowtune_sched-a7ba40f933116df1.rmeta: crates/sched/src/lib.rs crates/sched/src/hetero.rs crates/sched/src/online_lb.rs crates/sched/src/schedule.rs crates/sched/src/skyline.rs crates/sched/src/slots.rs

crates/sched/src/lib.rs:
crates/sched/src/hetero.rs:
crates/sched/src/online_lb.rs:
crates/sched/src/schedule.rs:
crates/sched/src/skyline.rs:
crates/sched/src/slots.rs:
