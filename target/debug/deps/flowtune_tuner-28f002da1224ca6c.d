/root/repo/target/debug/deps/flowtune_tuner-28f002da1224ca6c.d: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

/root/repo/target/debug/deps/flowtune_tuner-28f002da1224ca6c: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

crates/tuner/src/lib.rs:
crates/tuner/src/adaptive.rs:
crates/tuner/src/estimate.rs:
crates/tuner/src/gain.rs:
crates/tuner/src/history.rs:
crates/tuner/src/rank.rs:
crates/tuner/src/tuning.rs:
