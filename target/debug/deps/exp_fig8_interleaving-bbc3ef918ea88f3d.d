/root/repo/target/debug/deps/exp_fig8_interleaving-bbc3ef918ea88f3d.d: crates/bench/src/bin/exp_fig8_interleaving.rs

/root/repo/target/debug/deps/exp_fig8_interleaving-bbc3ef918ea88f3d: crates/bench/src/bin/exp_fig8_interleaving.rs

crates/bench/src/bin/exp_fig8_interleaving.rs:
