/root/repo/target/debug/deps/flowtune_storage-ce4129beab094213.d: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/column.rs crates/storage/src/lineitem.rs crates/storage/src/schema.rs crates/storage/src/store.rs crates/storage/src/table.rs crates/storage/src/value.rs

/root/repo/target/debug/deps/flowtune_storage-ce4129beab094213: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/column.rs crates/storage/src/lineitem.rs crates/storage/src/schema.rs crates/storage/src/store.rs crates/storage/src/table.rs crates/storage/src/value.rs

crates/storage/src/lib.rs:
crates/storage/src/cache.rs:
crates/storage/src/column.rs:
crates/storage/src/lineitem.rs:
crates/storage/src/schema.rs:
crates/storage/src/store.rs:
crates/storage/src/table.rs:
crates/storage/src/value.rs:
