/root/repo/target/debug/deps/exp_fig4_ranking-abe035f316944b6e.d: crates/bench/src/bin/exp_fig4_ranking.rs

/root/repo/target/debug/deps/exp_fig4_ranking-abe035f316944b6e: crates/bench/src/bin/exp_fig4_ranking.rs

crates/bench/src/bin/exp_fig4_ranking.rs:
