/root/repo/target/debug/deps/exp_fig12_phase_workload-92cde0ec4d4f1212.d: crates/bench/src/bin/exp_fig12_phase_workload.rs

/root/repo/target/debug/deps/exp_fig12_phase_workload-92cde0ec4d4f1212: crates/bench/src/bin/exp_fig12_phase_workload.rs

crates/bench/src/bin/exp_fig12_phase_workload.rs:
