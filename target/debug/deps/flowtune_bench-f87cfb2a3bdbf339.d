/root/repo/target/debug/deps/flowtune_bench-f87cfb2a3bdbf339.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libflowtune_bench-f87cfb2a3bdbf339.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libflowtune_bench-f87cfb2a3bdbf339.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
