/root/repo/target/debug/deps/schedule_pipeline-2dbede0da9b6edea.d: crates/core/../../tests/schedule_pipeline.rs

/root/repo/target/debug/deps/schedule_pipeline-2dbede0da9b6edea: crates/core/../../tests/schedule_pipeline.rs

crates/core/../../tests/schedule_pipeline.rs:
