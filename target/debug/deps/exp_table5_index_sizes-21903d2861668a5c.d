/root/repo/target/debug/deps/exp_table5_index_sizes-21903d2861668a5c.d: crates/bench/src/bin/exp_table5_index_sizes.rs

/root/repo/target/debug/deps/exp_table5_index_sizes-21903d2861668a5c: crates/bench/src/bin/exp_table5_index_sizes.rs

crates/bench/src/bin/exp_table5_index_sizes.rs:
