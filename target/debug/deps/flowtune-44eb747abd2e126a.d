/root/repo/target/debug/deps/flowtune-44eb747abd2e126a.d: crates/core/src/bin/flowtune.rs

/root/repo/target/debug/deps/flowtune-44eb747abd2e126a: crates/core/src/bin/flowtune.rs

crates/core/src/bin/flowtune.rs:
