/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-271fd4be4aef25f6.d: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-271fd4be4aef25f6: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

crates/bench/src/bin/exp_fig7_scheduler_comparison.rs:
