/root/repo/target/debug/deps/exp_table6_speedups-993a8c9469ca0f46.d: crates/bench/src/bin/exp_table6_speedups.rs

/root/repo/target/debug/deps/exp_table6_speedups-993a8c9469ca0f46: crates/bench/src/bin/exp_table6_speedups.rs

crates/bench/src/bin/exp_table6_speedups.rs:
