/root/repo/target/debug/deps/exp_fig12_phase_workload-5ba3747f7f17a697.d: crates/bench/src/bin/exp_fig12_phase_workload.rs

/root/repo/target/debug/deps/exp_fig12_phase_workload-5ba3747f7f17a697: crates/bench/src/bin/exp_fig12_phase_workload.rs

crates/bench/src/bin/exp_fig12_phase_workload.rs:
