/root/repo/target/debug/deps/exp_fig9_timeline-ab25e156b3235c94.d: crates/bench/src/bin/exp_fig9_timeline.rs

/root/repo/target/debug/deps/exp_fig9_timeline-ab25e156b3235c94: crates/bench/src/bin/exp_fig9_timeline.rs

crates/bench/src/bin/exp_fig9_timeline.rs:
