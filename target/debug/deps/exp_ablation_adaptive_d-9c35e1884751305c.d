/root/repo/target/debug/deps/exp_ablation_adaptive_d-9c35e1884751305c.d: crates/bench/src/bin/exp_ablation_adaptive_d.rs

/root/repo/target/debug/deps/exp_ablation_adaptive_d-9c35e1884751305c: crates/bench/src/bin/exp_ablation_adaptive_d.rs

crates/bench/src/bin/exp_ablation_adaptive_d.rs:
