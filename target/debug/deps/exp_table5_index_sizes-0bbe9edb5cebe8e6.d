/root/repo/target/debug/deps/exp_table5_index_sizes-0bbe9edb5cebe8e6.d: crates/bench/src/bin/exp_table5_index_sizes.rs

/root/repo/target/debug/deps/exp_table5_index_sizes-0bbe9edb5cebe8e6: crates/bench/src/bin/exp_table5_index_sizes.rs

crates/bench/src/bin/exp_table5_index_sizes.rs:
