/root/repo/target/debug/deps/flowtune_cloud-3fa141fee9d1cfd5.d: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

/root/repo/target/debug/deps/flowtune_cloud-3fa141fee9d1cfd5: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

crates/cloud/src/lib.rs:
crates/cloud/src/fault.rs:
crates/cloud/src/perturb.rs:
crates/cloud/src/report.rs:
crates/cloud/src/sim.rs:
