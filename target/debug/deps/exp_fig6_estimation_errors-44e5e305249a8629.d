/root/repo/target/debug/deps/exp_fig6_estimation_errors-44e5e305249a8629.d: crates/bench/src/bin/exp_fig6_estimation_errors.rs

/root/repo/target/debug/deps/exp_fig6_estimation_errors-44e5e305249a8629: crates/bench/src/bin/exp_fig6_estimation_errors.rs

crates/bench/src/bin/exp_fig6_estimation_errors.rs:
