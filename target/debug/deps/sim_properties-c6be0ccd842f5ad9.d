/root/repo/target/debug/deps/sim_properties-c6be0ccd842f5ad9.d: crates/cloud/tests/sim_properties.rs

/root/repo/target/debug/deps/sim_properties-c6be0ccd842f5ad9: crates/cloud/tests/sim_properties.rs

crates/cloud/tests/sim_properties.rs:
