/root/repo/target/debug/deps/obs_golden-64d90ea33270c213.d: crates/core/../../tests/obs_golden.rs crates/core/../../tests/golden/trace_smoke.jsonl crates/core/../../tests/golden/metrics_smoke.json

/root/repo/target/debug/deps/obs_golden-64d90ea33270c213: crates/core/../../tests/obs_golden.rs crates/core/../../tests/golden/trace_smoke.jsonl crates/core/../../tests/golden/metrics_smoke.json

crates/core/../../tests/obs_golden.rs:
crates/core/../../tests/golden/trace_smoke.jsonl:
crates/core/../../tests/golden/metrics_smoke.json:
