/root/repo/target/debug/deps/exp_table4_dataflow_stats-f4c79fb25502be45.d: crates/bench/src/bin/exp_table4_dataflow_stats.rs

/root/repo/target/debug/deps/exp_table4_dataflow_stats-f4c79fb25502be45: crates/bench/src/bin/exp_table4_dataflow_stats.rs

crates/bench/src/bin/exp_table4_dataflow_stats.rs:
