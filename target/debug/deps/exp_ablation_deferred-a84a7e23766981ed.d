/root/repo/target/debug/deps/exp_ablation_deferred-a84a7e23766981ed.d: crates/bench/src/bin/exp_ablation_deferred.rs

/root/repo/target/debug/deps/exp_ablation_deferred-a84a7e23766981ed: crates/bench/src/bin/exp_ablation_deferred.rs

crates/bench/src/bin/exp_ablation_deferred.rs:
