/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-c3daaca717419fc5.d: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-c3daaca717419fc5: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

crates/bench/src/bin/exp_fig7_scheduler_comparison.rs:
