/root/repo/target/debug/deps/flowtune_index-23a755daddfae7d9.d: crates/index/src/lib.rs crates/index/src/bptree.rs crates/index/src/catalog.rs crates/index/src/hash.rs crates/index/src/model.rs

/root/repo/target/debug/deps/flowtune_index-23a755daddfae7d9: crates/index/src/lib.rs crates/index/src/bptree.rs crates/index/src/catalog.rs crates/index/src/hash.rs crates/index/src/model.rs

crates/index/src/lib.rs:
crates/index/src/bptree.rs:
crates/index/src/catalog.rs:
crates/index/src/hash.rs:
crates/index/src/model.rs:
