/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-c79bdb03ce254cb1.d: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-c79bdb03ce254cb1: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

crates/bench/src/bin/exp_fig7_scheduler_comparison.rs:
