/root/repo/target/debug/deps/exp_ablation_adaptive_d-5a3d492e5de300d4.d: crates/bench/src/bin/exp_ablation_adaptive_d.rs

/root/repo/target/debug/deps/exp_ablation_adaptive_d-5a3d492e5de300d4: crates/bench/src/bin/exp_ablation_adaptive_d.rs

crates/bench/src/bin/exp_ablation_adaptive_d.rs:
