/root/repo/target/debug/deps/exp_table6_speedups-4f7d4a73b6375940.d: crates/bench/src/bin/exp_table6_speedups.rs

/root/repo/target/debug/deps/exp_table6_speedups-4f7d4a73b6375940: crates/bench/src/bin/exp_table6_speedups.rs

crates/bench/src/bin/exp_table6_speedups.rs:
