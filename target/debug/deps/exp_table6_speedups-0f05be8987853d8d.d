/root/repo/target/debug/deps/exp_table6_speedups-0f05be8987853d8d.d: crates/bench/src/bin/exp_table6_speedups.rs

/root/repo/target/debug/deps/exp_table6_speedups-0f05be8987853d8d: crates/bench/src/bin/exp_table6_speedups.rs

crates/bench/src/bin/exp_table6_speedups.rs:
