/root/repo/target/debug/deps/reproduction_smoke-77f4b0e728077c9f.d: crates/core/../../tests/reproduction_smoke.rs

/root/repo/target/debug/deps/reproduction_smoke-77f4b0e728077c9f: crates/core/../../tests/reproduction_smoke.rs

crates/core/../../tests/reproduction_smoke.rs:
