/root/repo/target/debug/deps/flowtune-67d58d0c544164ed.d: crates/core/src/bin/flowtune.rs

/root/repo/target/debug/deps/flowtune-67d58d0c544164ed: crates/core/src/bin/flowtune.rs

crates/core/src/bin/flowtune.rs:
