/root/repo/target/debug/deps/flowtune_common-2d02446019439e54.d: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/histogram.rs crates/common/src/ids.rs crates/common/src/money.rs crates/common/src/pricing.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs

/root/repo/target/debug/deps/libflowtune_common-2d02446019439e54.rlib: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/histogram.rs crates/common/src/ids.rs crates/common/src/money.rs crates/common/src/pricing.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs

/root/repo/target/debug/deps/libflowtune_common-2d02446019439e54.rmeta: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/histogram.rs crates/common/src/ids.rs crates/common/src/money.rs crates/common/src/pricing.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs

crates/common/src/lib.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/histogram.rs:
crates/common/src/ids.rs:
crates/common/src/money.rs:
crates/common/src/pricing.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/time.rs:
