/root/repo/target/debug/deps/reproduction_smoke-0c2e04e98ca772c2.d: crates/core/../../tests/reproduction_smoke.rs

/root/repo/target/debug/deps/reproduction_smoke-0c2e04e98ca772c2: crates/core/../../tests/reproduction_smoke.rs

crates/core/../../tests/reproduction_smoke.rs:
