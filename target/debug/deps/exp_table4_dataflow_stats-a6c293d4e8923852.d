/root/repo/target/debug/deps/exp_table4_dataflow_stats-a6c293d4e8923852.d: crates/bench/src/bin/exp_table4_dataflow_stats.rs

/root/repo/target/debug/deps/exp_table4_dataflow_stats-a6c293d4e8923852: crates/bench/src/bin/exp_table4_dataflow_stats.rs

crates/bench/src/bin/exp_table4_dataflow_stats.rs:
