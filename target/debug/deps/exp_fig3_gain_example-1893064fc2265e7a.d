/root/repo/target/debug/deps/exp_fig3_gain_example-1893064fc2265e7a.d: crates/bench/src/bin/exp_fig3_gain_example.rs

/root/repo/target/debug/deps/exp_fig3_gain_example-1893064fc2265e7a: crates/bench/src/bin/exp_fig3_gain_example.rs

crates/bench/src/bin/exp_fig3_gain_example.rs:
