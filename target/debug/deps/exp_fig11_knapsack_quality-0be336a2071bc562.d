/root/repo/target/debug/deps/exp_fig11_knapsack_quality-0be336a2071bc562.d: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

/root/repo/target/debug/deps/exp_fig11_knapsack_quality-0be336a2071bc562: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

crates/bench/src/bin/exp_fig11_knapsack_quality.rs:
