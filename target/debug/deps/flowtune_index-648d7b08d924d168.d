/root/repo/target/debug/deps/flowtune_index-648d7b08d924d168.d: crates/index/src/lib.rs crates/index/src/bptree.rs crates/index/src/catalog.rs crates/index/src/hash.rs crates/index/src/model.rs

/root/repo/target/debug/deps/libflowtune_index-648d7b08d924d168.rlib: crates/index/src/lib.rs crates/index/src/bptree.rs crates/index/src/catalog.rs crates/index/src/hash.rs crates/index/src/model.rs

/root/repo/target/debug/deps/libflowtune_index-648d7b08d924d168.rmeta: crates/index/src/lib.rs crates/index/src/bptree.rs crates/index/src/catalog.rs crates/index/src/hash.rs crates/index/src/model.rs

crates/index/src/lib.rs:
crates/index/src/bptree.rs:
crates/index/src/catalog.rs:
crates/index/src/hash.rs:
crates/index/src/model.rs:
