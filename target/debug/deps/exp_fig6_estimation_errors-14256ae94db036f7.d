/root/repo/target/debug/deps/exp_fig6_estimation_errors-14256ae94db036f7.d: crates/bench/src/bin/exp_fig6_estimation_errors.rs

/root/repo/target/debug/deps/exp_fig6_estimation_errors-14256ae94db036f7: crates/bench/src/bin/exp_fig6_estimation_errors.rs

crates/bench/src/bin/exp_fig6_estimation_errors.rs:
