/root/repo/target/debug/deps/exp_fig13_adaptation-532e3b1d94aa2d99.d: crates/bench/src/bin/exp_fig13_adaptation.rs

/root/repo/target/debug/deps/exp_fig13_adaptation-532e3b1d94aa2d99: crates/bench/src/bin/exp_fig13_adaptation.rs

crates/bench/src/bin/exp_fig13_adaptation.rs:
