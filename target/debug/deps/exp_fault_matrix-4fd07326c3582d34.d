/root/repo/target/debug/deps/exp_fault_matrix-4fd07326c3582d34.d: crates/bench/src/bin/exp_fault_matrix.rs

/root/repo/target/debug/deps/exp_fault_matrix-4fd07326c3582d34: crates/bench/src/bin/exp_fault_matrix.rs

crates/bench/src/bin/exp_fault_matrix.rs:
