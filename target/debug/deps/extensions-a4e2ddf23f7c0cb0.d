/root/repo/target/debug/deps/extensions-a4e2ddf23f7c0cb0.d: crates/core/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-a4e2ddf23f7c0cb0: crates/core/../../tests/extensions.rs

crates/core/../../tests/extensions.rs:
