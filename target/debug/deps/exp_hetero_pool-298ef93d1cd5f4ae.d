/root/repo/target/debug/deps/exp_hetero_pool-298ef93d1cd5f4ae.d: crates/bench/src/bin/exp_hetero_pool.rs

/root/repo/target/debug/deps/exp_hetero_pool-298ef93d1cd5f4ae: crates/bench/src/bin/exp_hetero_pool.rs

crates/bench/src/bin/exp_hetero_pool.rs:
