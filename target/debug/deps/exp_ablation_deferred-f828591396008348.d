/root/repo/target/debug/deps/exp_ablation_deferred-f828591396008348.d: crates/bench/src/bin/exp_ablation_deferred.rs

/root/repo/target/debug/deps/exp_ablation_deferred-f828591396008348: crates/bench/src/bin/exp_ablation_deferred.rs

crates/bench/src/bin/exp_ablation_deferred.rs:
