/root/repo/target/debug/deps/flowtune_obs-01a9088e2219989c.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

/root/repo/target/debug/deps/flowtune_obs-01a9088e2219989c: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
