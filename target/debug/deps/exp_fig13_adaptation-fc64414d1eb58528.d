/root/repo/target/debug/deps/exp_fig13_adaptation-fc64414d1eb58528.d: crates/bench/src/bin/exp_fig13_adaptation.rs

/root/repo/target/debug/deps/exp_fig13_adaptation-fc64414d1eb58528: crates/bench/src/bin/exp_fig13_adaptation.rs

crates/bench/src/bin/exp_fig13_adaptation.rs:
