/root/repo/target/debug/deps/exp_fig11_knapsack_quality-8ba93397db64d1bf.d: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

/root/repo/target/debug/deps/exp_fig11_knapsack_quality-8ba93397db64d1bf: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

crates/bench/src/bin/exp_fig11_knapsack_quality.rs:
