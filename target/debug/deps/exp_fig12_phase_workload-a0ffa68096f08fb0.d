/root/repo/target/debug/deps/exp_fig12_phase_workload-a0ffa68096f08fb0.d: crates/bench/src/bin/exp_fig12_phase_workload.rs

/root/repo/target/debug/deps/exp_fig12_phase_workload-a0ffa68096f08fb0: crates/bench/src/bin/exp_fig12_phase_workload.rs

crates/bench/src/bin/exp_fig12_phase_workload.rs:
