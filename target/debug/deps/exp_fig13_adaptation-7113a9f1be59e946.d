/root/repo/target/debug/deps/exp_fig13_adaptation-7113a9f1be59e946.d: crates/bench/src/bin/exp_fig13_adaptation.rs

/root/repo/target/debug/deps/exp_fig13_adaptation-7113a9f1be59e946: crates/bench/src/bin/exp_fig13_adaptation.rs

crates/bench/src/bin/exp_fig13_adaptation.rs:
