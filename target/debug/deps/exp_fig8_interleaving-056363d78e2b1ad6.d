/root/repo/target/debug/deps/exp_fig8_interleaving-056363d78e2b1ad6.d: crates/bench/src/bin/exp_fig8_interleaving.rs

/root/repo/target/debug/deps/exp_fig8_interleaving-056363d78e2b1ad6: crates/bench/src/bin/exp_fig8_interleaving.rs

crates/bench/src/bin/exp_fig8_interleaving.rs:
