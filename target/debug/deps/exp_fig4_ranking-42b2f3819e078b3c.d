/root/repo/target/debug/deps/exp_fig4_ranking-42b2f3819e078b3c.d: crates/bench/src/bin/exp_fig4_ranking.rs

/root/repo/target/debug/deps/exp_fig4_ranking-42b2f3819e078b3c: crates/bench/src/bin/exp_fig4_ranking.rs

crates/bench/src/bin/exp_fig4_ranking.rs:
