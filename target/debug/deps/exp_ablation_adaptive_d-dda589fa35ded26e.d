/root/repo/target/debug/deps/exp_ablation_adaptive_d-dda589fa35ded26e.d: crates/bench/src/bin/exp_ablation_adaptive_d.rs

/root/repo/target/debug/deps/exp_ablation_adaptive_d-dda589fa35ded26e: crates/bench/src/bin/exp_ablation_adaptive_d.rs

crates/bench/src/bin/exp_ablation_adaptive_d.rs:
