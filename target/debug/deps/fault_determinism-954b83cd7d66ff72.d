/root/repo/target/debug/deps/fault_determinism-954b83cd7d66ff72.d: crates/cloud/tests/fault_determinism.rs

/root/repo/target/debug/deps/fault_determinism-954b83cd7d66ff72: crates/cloud/tests/fault_determinism.rs

crates/cloud/tests/fault_determinism.rs:
