/root/repo/target/debug/deps/exp_fig9_timeline-2f602ed273eb81b4.d: crates/bench/src/bin/exp_fig9_timeline.rs

/root/repo/target/debug/deps/exp_fig9_timeline-2f602ed273eb81b4: crates/bench/src/bin/exp_fig9_timeline.rs

crates/bench/src/bin/exp_fig9_timeline.rs:
