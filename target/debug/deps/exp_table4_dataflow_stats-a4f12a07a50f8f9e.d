/root/repo/target/debug/deps/exp_table4_dataflow_stats-a4f12a07a50f8f9e.d: crates/bench/src/bin/exp_table4_dataflow_stats.rs

/root/repo/target/debug/deps/exp_table4_dataflow_stats-a4f12a07a50f8f9e: crates/bench/src/bin/exp_table4_dataflow_stats.rs

crates/bench/src/bin/exp_table4_dataflow_stats.rs:
