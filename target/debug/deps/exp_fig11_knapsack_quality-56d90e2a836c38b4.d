/root/repo/target/debug/deps/exp_fig11_knapsack_quality-56d90e2a836c38b4.d: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

/root/repo/target/debug/deps/exp_fig11_knapsack_quality-56d90e2a836c38b4: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

crates/bench/src/bin/exp_fig11_knapsack_quality.rs:
