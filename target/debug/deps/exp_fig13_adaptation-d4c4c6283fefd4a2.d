/root/repo/target/debug/deps/exp_fig13_adaptation-d4c4c6283fefd4a2.d: crates/bench/src/bin/exp_fig13_adaptation.rs

/root/repo/target/debug/deps/exp_fig13_adaptation-d4c4c6283fefd4a2: crates/bench/src/bin/exp_fig13_adaptation.rs

crates/bench/src/bin/exp_fig13_adaptation.rs:
