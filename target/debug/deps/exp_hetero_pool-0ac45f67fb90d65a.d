/root/repo/target/debug/deps/exp_hetero_pool-0ac45f67fb90d65a.d: crates/bench/src/bin/exp_hetero_pool.rs

/root/repo/target/debug/deps/exp_hetero_pool-0ac45f67fb90d65a: crates/bench/src/bin/exp_hetero_pool.rs

crates/bench/src/bin/exp_hetero_pool.rs:
