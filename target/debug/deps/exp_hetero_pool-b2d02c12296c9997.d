/root/repo/target/debug/deps/exp_hetero_pool-b2d02c12296c9997.d: crates/bench/src/bin/exp_hetero_pool.rs

/root/repo/target/debug/deps/exp_hetero_pool-b2d02c12296c9997: crates/bench/src/bin/exp_hetero_pool.rs

crates/bench/src/bin/exp_hetero_pool.rs:
