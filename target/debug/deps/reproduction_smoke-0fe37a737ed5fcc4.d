/root/repo/target/debug/deps/reproduction_smoke-0fe37a737ed5fcc4.d: crates/core/../../tests/reproduction_smoke.rs

/root/repo/target/debug/deps/reproduction_smoke-0fe37a737ed5fcc4: crates/core/../../tests/reproduction_smoke.rs

crates/core/../../tests/reproduction_smoke.rs:
