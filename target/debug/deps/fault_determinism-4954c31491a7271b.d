/root/repo/target/debug/deps/fault_determinism-4954c31491a7271b.d: crates/cloud/tests/fault_determinism.rs

/root/repo/target/debug/deps/fault_determinism-4954c31491a7271b: crates/cloud/tests/fault_determinism.rs

crates/cloud/tests/fault_determinism.rs:
