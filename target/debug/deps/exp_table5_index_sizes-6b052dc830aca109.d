/root/repo/target/debug/deps/exp_table5_index_sizes-6b052dc830aca109.d: crates/bench/src/bin/exp_table5_index_sizes.rs

/root/repo/target/debug/deps/exp_table5_index_sizes-6b052dc830aca109: crates/bench/src/bin/exp_table5_index_sizes.rs

crates/bench/src/bin/exp_table5_index_sizes.rs:
