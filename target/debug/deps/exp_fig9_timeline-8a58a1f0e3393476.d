/root/repo/target/debug/deps/exp_fig9_timeline-8a58a1f0e3393476.d: crates/bench/src/bin/exp_fig9_timeline.rs

/root/repo/target/debug/deps/exp_fig9_timeline-8a58a1f0e3393476: crates/bench/src/bin/exp_fig9_timeline.rs

crates/bench/src/bin/exp_fig9_timeline.rs:
