/root/repo/target/debug/deps/exp_ablation_deferred-d73b9d838361ff28.d: crates/bench/src/bin/exp_ablation_deferred.rs

/root/repo/target/debug/deps/exp_ablation_deferred-d73b9d838361ff28: crates/bench/src/bin/exp_ablation_deferred.rs

crates/bench/src/bin/exp_ablation_deferred.rs:
