/root/repo/target/debug/deps/flowtune_tuner-9cd9aa988e3b96ba.d: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

/root/repo/target/debug/deps/libflowtune_tuner-9cd9aa988e3b96ba.rlib: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

/root/repo/target/debug/deps/libflowtune_tuner-9cd9aa988e3b96ba.rmeta: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

crates/tuner/src/lib.rs:
crates/tuner/src/adaptive.rs:
crates/tuner/src/estimate.rs:
crates/tuner/src/gain.rs:
crates/tuner/src/history.rs:
crates/tuner/src/rank.rs:
crates/tuner/src/tuning.rs:
