/root/repo/target/debug/deps/exp_fig6_estimation_errors-6dc408fc49b86202.d: crates/bench/src/bin/exp_fig6_estimation_errors.rs

/root/repo/target/debug/deps/exp_fig6_estimation_errors-6dc408fc49b86202: crates/bench/src/bin/exp_fig6_estimation_errors.rs

crates/bench/src/bin/exp_fig6_estimation_errors.rs:
