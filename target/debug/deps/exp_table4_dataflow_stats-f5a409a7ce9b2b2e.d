/root/repo/target/debug/deps/exp_table4_dataflow_stats-f5a409a7ce9b2b2e.d: crates/bench/src/bin/exp_table4_dataflow_stats.rs

/root/repo/target/debug/deps/exp_table4_dataflow_stats-f5a409a7ce9b2b2e: crates/bench/src/bin/exp_table4_dataflow_stats.rs

crates/bench/src/bin/exp_table4_dataflow_stats.rs:
