/root/repo/target/debug/deps/exp_table6_speedups-20b291d54b16bab9.d: crates/bench/src/bin/exp_table6_speedups.rs

/root/repo/target/debug/deps/exp_table6_speedups-20b291d54b16bab9: crates/bench/src/bin/exp_table6_speedups.rs

crates/bench/src/bin/exp_table6_speedups.rs:
