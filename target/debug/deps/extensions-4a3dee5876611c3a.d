/root/repo/target/debug/deps/extensions-4a3dee5876611c3a.d: crates/core/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-4a3dee5876611c3a: crates/core/../../tests/extensions.rs

crates/core/../../tests/extensions.rs:
