/root/repo/target/debug/deps/flowtune_sched-aa042e6f17e1be93.d: crates/sched/src/lib.rs crates/sched/src/hetero.rs crates/sched/src/online_lb.rs crates/sched/src/schedule.rs crates/sched/src/skyline.rs crates/sched/src/slots.rs

/root/repo/target/debug/deps/flowtune_sched-aa042e6f17e1be93: crates/sched/src/lib.rs crates/sched/src/hetero.rs crates/sched/src/online_lb.rs crates/sched/src/schedule.rs crates/sched/src/skyline.rs crates/sched/src/slots.rs

crates/sched/src/lib.rs:
crates/sched/src/hetero.rs:
crates/sched/src/online_lb.rs:
crates/sched/src/schedule.rs:
crates/sched/src/skyline.rs:
crates/sched/src/slots.rs:
