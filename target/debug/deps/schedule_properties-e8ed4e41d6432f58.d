/root/repo/target/debug/deps/schedule_properties-e8ed4e41d6432f58.d: crates/sched/tests/schedule_properties.rs

/root/repo/target/debug/deps/schedule_properties-e8ed4e41d6432f58: crates/sched/tests/schedule_properties.rs

crates/sched/tests/schedule_properties.rs:
