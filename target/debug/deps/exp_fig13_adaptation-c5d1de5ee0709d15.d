/root/repo/target/debug/deps/exp_fig13_adaptation-c5d1de5ee0709d15.d: crates/bench/src/bin/exp_fig13_adaptation.rs

/root/repo/target/debug/deps/exp_fig13_adaptation-c5d1de5ee0709d15: crates/bench/src/bin/exp_fig13_adaptation.rs

crates/bench/src/bin/exp_fig13_adaptation.rs:
