/root/repo/target/debug/deps/flowtune_tuner-60b01bd1a1e68f22.d: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

/root/repo/target/debug/deps/flowtune_tuner-60b01bd1a1e68f22: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

crates/tuner/src/lib.rs:
crates/tuner/src/adaptive.rs:
crates/tuner/src/estimate.rs:
crates/tuner/src/gain.rs:
crates/tuner/src/history.rs:
crates/tuner/src/rank.rs:
crates/tuner/src/tuning.rs:
