/root/repo/target/debug/deps/flowtune_query-61f77b977df82168.d: crates/query/src/lib.rs crates/query/src/group.rs crates/query/src/join.rs crates/query/src/lookup.rs crates/query/src/plan.rs crates/query/src/sort.rs crates/query/src/table6.rs crates/query/src/timer.rs

/root/repo/target/debug/deps/libflowtune_query-61f77b977df82168.rlib: crates/query/src/lib.rs crates/query/src/group.rs crates/query/src/join.rs crates/query/src/lookup.rs crates/query/src/plan.rs crates/query/src/sort.rs crates/query/src/table6.rs crates/query/src/timer.rs

/root/repo/target/debug/deps/libflowtune_query-61f77b977df82168.rmeta: crates/query/src/lib.rs crates/query/src/group.rs crates/query/src/join.rs crates/query/src/lookup.rs crates/query/src/plan.rs crates/query/src/sort.rs crates/query/src/table6.rs crates/query/src/timer.rs

crates/query/src/lib.rs:
crates/query/src/group.rs:
crates/query/src/join.rs:
crates/query/src/lookup.rs:
crates/query/src/plan.rs:
crates/query/src/sort.rs:
crates/query/src/table6.rs:
crates/query/src/timer.rs:
