/root/repo/target/debug/deps/exp_ablation_deferred-a14acb45d38df8b5.d: crates/bench/src/bin/exp_ablation_deferred.rs

/root/repo/target/debug/deps/exp_ablation_deferred-a14acb45d38df8b5: crates/bench/src/bin/exp_ablation_deferred.rs

crates/bench/src/bin/exp_ablation_deferred.rs:
