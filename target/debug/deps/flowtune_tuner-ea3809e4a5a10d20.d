/root/repo/target/debug/deps/flowtune_tuner-ea3809e4a5a10d20.d: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

/root/repo/target/debug/deps/libflowtune_tuner-ea3809e4a5a10d20.rlib: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

/root/repo/target/debug/deps/libflowtune_tuner-ea3809e4a5a10d20.rmeta: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

crates/tuner/src/lib.rs:
crates/tuner/src/adaptive.rs:
crates/tuner/src/estimate.rs:
crates/tuner/src/gain.rs:
crates/tuner/src/history.rs:
crates/tuner/src/rank.rs:
crates/tuner/src/tuning.rs:
