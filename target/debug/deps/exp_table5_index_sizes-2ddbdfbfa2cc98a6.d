/root/repo/target/debug/deps/exp_table5_index_sizes-2ddbdfbfa2cc98a6.d: crates/bench/src/bin/exp_table5_index_sizes.rs

/root/repo/target/debug/deps/exp_table5_index_sizes-2ddbdfbfa2cc98a6: crates/bench/src/bin/exp_table5_index_sizes.rs

crates/bench/src/bin/exp_table5_index_sizes.rs:
