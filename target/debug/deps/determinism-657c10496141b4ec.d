/root/repo/target/debug/deps/determinism-657c10496141b4ec.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-657c10496141b4ec: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
