/root/repo/target/debug/deps/exp_ablation_deferred-f8075e368b21a09a.d: crates/bench/src/bin/exp_ablation_deferred.rs

/root/repo/target/debug/deps/exp_ablation_deferred-f8075e368b21a09a: crates/bench/src/bin/exp_ablation_deferred.rs

crates/bench/src/bin/exp_ablation_deferred.rs:
