/root/repo/target/debug/deps/exp_hetero_pool-88b7fbd70e5f3cf8.d: crates/bench/src/bin/exp_hetero_pool.rs

/root/repo/target/debug/deps/exp_hetero_pool-88b7fbd70e5f3cf8: crates/bench/src/bin/exp_hetero_pool.rs

crates/bench/src/bin/exp_hetero_pool.rs:
