/root/repo/target/debug/deps/flowtune_bench-37496b37270e7469.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/flowtune_bench-37496b37270e7469: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
