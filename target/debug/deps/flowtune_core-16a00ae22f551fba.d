/root/repo/target/debug/deps/flowtune_core-16a00ae22f551fba.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/recovery.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

/root/repo/target/debug/deps/libflowtune_core-16a00ae22f551fba.rlib: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/recovery.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

/root/repo/target/debug/deps/libflowtune_core-16a00ae22f551fba.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/recovery.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/policy.rs:
crates/core/src/recovery.rs:
crates/core/src/report.rs:
crates/core/src/service.rs:
crates/core/src/tablefmt.rs:
