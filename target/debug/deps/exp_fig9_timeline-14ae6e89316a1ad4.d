/root/repo/target/debug/deps/exp_fig9_timeline-14ae6e89316a1ad4.d: crates/bench/src/bin/exp_fig9_timeline.rs

/root/repo/target/debug/deps/exp_fig9_timeline-14ae6e89316a1ad4: crates/bench/src/bin/exp_fig9_timeline.rs

crates/bench/src/bin/exp_fig9_timeline.rs:
