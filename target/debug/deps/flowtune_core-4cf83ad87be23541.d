/root/repo/target/debug/deps/flowtune_core-4cf83ad87be23541.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/recovery.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

/root/repo/target/debug/deps/libflowtune_core-4cf83ad87be23541.rlib: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/recovery.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

/root/repo/target/debug/deps/libflowtune_core-4cf83ad87be23541.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/recovery.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/policy.rs:
crates/core/src/recovery.rs:
crates/core/src/report.rs:
crates/core/src/service.rs:
crates/core/src/tablefmt.rs:
