/root/repo/target/debug/deps/exp_ablation_alpha-b72d91d6731fd570.d: crates/bench/src/bin/exp_ablation_alpha.rs

/root/repo/target/debug/deps/exp_ablation_alpha-b72d91d6731fd570: crates/bench/src/bin/exp_ablation_alpha.rs

crates/bench/src/bin/exp_ablation_alpha.rs:
