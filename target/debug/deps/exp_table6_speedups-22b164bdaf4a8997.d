/root/repo/target/debug/deps/exp_table6_speedups-22b164bdaf4a8997.d: crates/bench/src/bin/exp_table6_speedups.rs

/root/repo/target/debug/deps/exp_table6_speedups-22b164bdaf4a8997: crates/bench/src/bin/exp_table6_speedups.rs

crates/bench/src/bin/exp_table6_speedups.rs:
