/root/repo/target/debug/deps/end_to_end-f34d18d7fc526f23.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f34d18d7fc526f23: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
