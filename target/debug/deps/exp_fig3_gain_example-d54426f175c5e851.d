/root/repo/target/debug/deps/exp_fig3_gain_example-d54426f175c5e851.d: crates/bench/src/bin/exp_fig3_gain_example.rs

/root/repo/target/debug/deps/exp_fig3_gain_example-d54426f175c5e851: crates/bench/src/bin/exp_fig3_gain_example.rs

crates/bench/src/bin/exp_fig3_gain_example.rs:
