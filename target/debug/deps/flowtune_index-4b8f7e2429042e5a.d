/root/repo/target/debug/deps/flowtune_index-4b8f7e2429042e5a.d: crates/index/src/lib.rs crates/index/src/bptree.rs crates/index/src/catalog.rs crates/index/src/hash.rs crates/index/src/model.rs

/root/repo/target/debug/deps/libflowtune_index-4b8f7e2429042e5a.rlib: crates/index/src/lib.rs crates/index/src/bptree.rs crates/index/src/catalog.rs crates/index/src/hash.rs crates/index/src/model.rs

/root/repo/target/debug/deps/libflowtune_index-4b8f7e2429042e5a.rmeta: crates/index/src/lib.rs crates/index/src/bptree.rs crates/index/src/catalog.rs crates/index/src/hash.rs crates/index/src/model.rs

crates/index/src/lib.rs:
crates/index/src/bptree.rs:
crates/index/src/catalog.rs:
crates/index/src/hash.rs:
crates/index/src/model.rs:
