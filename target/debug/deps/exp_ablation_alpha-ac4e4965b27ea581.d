/root/repo/target/debug/deps/exp_ablation_alpha-ac4e4965b27ea581.d: crates/bench/src/bin/exp_ablation_alpha.rs

/root/repo/target/debug/deps/exp_ablation_alpha-ac4e4965b27ea581: crates/bench/src/bin/exp_ablation_alpha.rs

crates/bench/src/bin/exp_ablation_alpha.rs:
