/root/repo/target/debug/deps/exp_fig14_random_workload-582485acd36693dc.d: crates/bench/src/bin/exp_fig14_random_workload.rs

/root/repo/target/debug/deps/exp_fig14_random_workload-582485acd36693dc: crates/bench/src/bin/exp_fig14_random_workload.rs

crates/bench/src/bin/exp_fig14_random_workload.rs:
