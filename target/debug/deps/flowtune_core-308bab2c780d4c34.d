/root/repo/target/debug/deps/flowtune_core-308bab2c780d4c34.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/recovery.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

/root/repo/target/debug/deps/flowtune_core-308bab2c780d4c34: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/recovery.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/policy.rs:
crates/core/src/recovery.rs:
crates/core/src/report.rs:
crates/core/src/service.rs:
crates/core/src/tablefmt.rs:
