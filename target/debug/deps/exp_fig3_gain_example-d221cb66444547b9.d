/root/repo/target/debug/deps/exp_fig3_gain_example-d221cb66444547b9.d: crates/bench/src/bin/exp_fig3_gain_example.rs

/root/repo/target/debug/deps/exp_fig3_gain_example-d221cb66444547b9: crates/bench/src/bin/exp_fig3_gain_example.rs

crates/bench/src/bin/exp_fig3_gain_example.rs:
