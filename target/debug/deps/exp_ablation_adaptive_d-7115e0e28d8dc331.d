/root/repo/target/debug/deps/exp_ablation_adaptive_d-7115e0e28d8dc331.d: crates/bench/src/bin/exp_ablation_adaptive_d.rs

/root/repo/target/debug/deps/exp_ablation_adaptive_d-7115e0e28d8dc331: crates/bench/src/bin/exp_ablation_adaptive_d.rs

crates/bench/src/bin/exp_ablation_adaptive_d.rs:
