/root/repo/target/debug/deps/flowtune_sched-fa9356a1952fb447.d: crates/sched/src/lib.rs crates/sched/src/hetero.rs crates/sched/src/online_lb.rs crates/sched/src/schedule.rs crates/sched/src/skyline.rs crates/sched/src/slots.rs

/root/repo/target/debug/deps/flowtune_sched-fa9356a1952fb447: crates/sched/src/lib.rs crates/sched/src/hetero.rs crates/sched/src/online_lb.rs crates/sched/src/schedule.rs crates/sched/src/skyline.rs crates/sched/src/slots.rs

crates/sched/src/lib.rs:
crates/sched/src/hetero.rs:
crates/sched/src/online_lb.rs:
crates/sched/src/schedule.rs:
crates/sched/src/skyline.rs:
crates/sched/src/slots.rs:
