/root/repo/target/debug/deps/exp_ablation_adaptive_d-55d155502a550381.d: crates/bench/src/bin/exp_ablation_adaptive_d.rs

/root/repo/target/debug/deps/exp_ablation_adaptive_d-55d155502a550381: crates/bench/src/bin/exp_ablation_adaptive_d.rs

crates/bench/src/bin/exp_ablation_adaptive_d.rs:
