/root/repo/target/debug/deps/exp_fault_matrix-cd50490e101828f1.d: crates/bench/src/bin/exp_fault_matrix.rs

/root/repo/target/debug/deps/exp_fault_matrix-cd50490e101828f1: crates/bench/src/bin/exp_fault_matrix.rs

crates/bench/src/bin/exp_fault_matrix.rs:
