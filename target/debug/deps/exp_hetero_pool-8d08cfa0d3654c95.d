/root/repo/target/debug/deps/exp_hetero_pool-8d08cfa0d3654c95.d: crates/bench/src/bin/exp_hetero_pool.rs

/root/repo/target/debug/deps/exp_hetero_pool-8d08cfa0d3654c95: crates/bench/src/bin/exp_hetero_pool.rs

crates/bench/src/bin/exp_hetero_pool.rs:
