/root/repo/target/debug/deps/flowtune-7b67f0a057d23ad0.d: crates/core/src/bin/flowtune.rs

/root/repo/target/debug/deps/flowtune-7b67f0a057d23ad0: crates/core/src/bin/flowtune.rs

crates/core/src/bin/flowtune.rs:
