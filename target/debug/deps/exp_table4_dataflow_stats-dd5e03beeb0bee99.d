/root/repo/target/debug/deps/exp_table4_dataflow_stats-dd5e03beeb0bee99.d: crates/bench/src/bin/exp_table4_dataflow_stats.rs

/root/repo/target/debug/deps/exp_table4_dataflow_stats-dd5e03beeb0bee99: crates/bench/src/bin/exp_table4_dataflow_stats.rs

crates/bench/src/bin/exp_table4_dataflow_stats.rs:
