/root/repo/target/debug/deps/exp_fig14_random_workload-dde1348877649157.d: crates/bench/src/bin/exp_fig14_random_workload.rs

/root/repo/target/debug/deps/exp_fig14_random_workload-dde1348877649157: crates/bench/src/bin/exp_fig14_random_workload.rs

crates/bench/src/bin/exp_fig14_random_workload.rs:
