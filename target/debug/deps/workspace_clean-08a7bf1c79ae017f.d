/root/repo/target/debug/deps/workspace_clean-08a7bf1c79ae017f.d: crates/analyze/tests/workspace_clean.rs

/root/repo/target/debug/deps/workspace_clean-08a7bf1c79ae017f: crates/analyze/tests/workspace_clean.rs

crates/analyze/tests/workspace_clean.rs:

# env-dep:CARGO_BIN_EXE_flowtune-analyze=/root/repo/target/debug/flowtune-analyze
