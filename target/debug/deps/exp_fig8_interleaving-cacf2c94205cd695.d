/root/repo/target/debug/deps/exp_fig8_interleaving-cacf2c94205cd695.d: crates/bench/src/bin/exp_fig8_interleaving.rs

/root/repo/target/debug/deps/exp_fig8_interleaving-cacf2c94205cd695: crates/bench/src/bin/exp_fig8_interleaving.rs

crates/bench/src/bin/exp_fig8_interleaving.rs:
