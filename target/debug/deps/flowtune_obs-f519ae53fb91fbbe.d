/root/repo/target/debug/deps/flowtune_obs-f519ae53fb91fbbe.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

/root/repo/target/debug/deps/libflowtune_obs-f519ae53fb91fbbe.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

/root/repo/target/debug/deps/libflowtune_obs-f519ae53fb91fbbe.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
