/root/repo/target/debug/deps/flowtune_cloud-96016e77b018face.d: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

/root/repo/target/debug/deps/flowtune_cloud-96016e77b018face: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

crates/cloud/src/lib.rs:
crates/cloud/src/fault.rs:
crates/cloud/src/perturb.rs:
crates/cloud/src/report.rs:
crates/cloud/src/sim.rs:
