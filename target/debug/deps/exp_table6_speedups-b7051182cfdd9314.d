/root/repo/target/debug/deps/exp_table6_speedups-b7051182cfdd9314.d: crates/bench/src/bin/exp_table6_speedups.rs

/root/repo/target/debug/deps/exp_table6_speedups-b7051182cfdd9314: crates/bench/src/bin/exp_table6_speedups.rs

crates/bench/src/bin/exp_table6_speedups.rs:
