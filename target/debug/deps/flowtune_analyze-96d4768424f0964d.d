/root/repo/target/debug/deps/flowtune_analyze-96d4768424f0964d.d: crates/analyze/src/lib.rs crates/analyze/src/rules/mod.rs crates/analyze/src/rules/dep_hygiene.rs crates/analyze/src/rules/determinism.rs crates/analyze/src/rules/newtype.rs crates/analyze/src/rules/ordered_iteration.rs crates/analyze/src/rules/panic_hygiene.rs crates/analyze/src/scan.rs crates/analyze/src/workspace.rs

/root/repo/target/debug/deps/flowtune_analyze-96d4768424f0964d: crates/analyze/src/lib.rs crates/analyze/src/rules/mod.rs crates/analyze/src/rules/dep_hygiene.rs crates/analyze/src/rules/determinism.rs crates/analyze/src/rules/newtype.rs crates/analyze/src/rules/ordered_iteration.rs crates/analyze/src/rules/panic_hygiene.rs crates/analyze/src/scan.rs crates/analyze/src/workspace.rs

crates/analyze/src/lib.rs:
crates/analyze/src/rules/mod.rs:
crates/analyze/src/rules/dep_hygiene.rs:
crates/analyze/src/rules/determinism.rs:
crates/analyze/src/rules/newtype.rs:
crates/analyze/src/rules/ordered_iteration.rs:
crates/analyze/src/rules/panic_hygiene.rs:
crates/analyze/src/scan.rs:
crates/analyze/src/workspace.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analyze
