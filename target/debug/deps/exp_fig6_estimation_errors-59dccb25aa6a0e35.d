/root/repo/target/debug/deps/exp_fig6_estimation_errors-59dccb25aa6a0e35.d: crates/bench/src/bin/exp_fig6_estimation_errors.rs

/root/repo/target/debug/deps/exp_fig6_estimation_errors-59dccb25aa6a0e35: crates/bench/src/bin/exp_fig6_estimation_errors.rs

crates/bench/src/bin/exp_fig6_estimation_errors.rs:
