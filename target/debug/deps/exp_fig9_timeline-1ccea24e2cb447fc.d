/root/repo/target/debug/deps/exp_fig9_timeline-1ccea24e2cb447fc.d: crates/bench/src/bin/exp_fig9_timeline.rs

/root/repo/target/debug/deps/exp_fig9_timeline-1ccea24e2cb447fc: crates/bench/src/bin/exp_fig9_timeline.rs

crates/bench/src/bin/exp_fig9_timeline.rs:
