/root/repo/target/debug/deps/exp_fig4_ranking-64d3579f115fd06a.d: crates/bench/src/bin/exp_fig4_ranking.rs

/root/repo/target/debug/deps/exp_fig4_ranking-64d3579f115fd06a: crates/bench/src/bin/exp_fig4_ranking.rs

crates/bench/src/bin/exp_fig4_ranking.rs:
