/root/repo/target/debug/deps/determinism-a10000411316257d.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-a10000411316257d: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
