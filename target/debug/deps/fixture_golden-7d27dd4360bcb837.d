/root/repo/target/debug/deps/fixture_golden-7d27dd4360bcb837.d: crates/analyze/tests/fixture_golden.rs

/root/repo/target/debug/deps/fixture_golden-7d27dd4360bcb837: crates/analyze/tests/fixture_golden.rs

crates/analyze/tests/fixture_golden.rs:

# env-dep:CARGO_BIN_EXE_flowtune-analyze=/root/repo/target/debug/flowtune-analyze
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analyze
