/root/repo/target/debug/deps/exp_fig3_gain_example-f23b8035f73ca20e.d: crates/bench/src/bin/exp_fig3_gain_example.rs

/root/repo/target/debug/deps/exp_fig3_gain_example-f23b8035f73ca20e: crates/bench/src/bin/exp_fig3_gain_example.rs

crates/bench/src/bin/exp_fig3_gain_example.rs:
