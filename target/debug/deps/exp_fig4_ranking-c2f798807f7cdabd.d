/root/repo/target/debug/deps/exp_fig4_ranking-c2f798807f7cdabd.d: crates/bench/src/bin/exp_fig4_ranking.rs

/root/repo/target/debug/deps/exp_fig4_ranking-c2f798807f7cdabd: crates/bench/src/bin/exp_fig4_ranking.rs

crates/bench/src/bin/exp_fig4_ranking.rs:
