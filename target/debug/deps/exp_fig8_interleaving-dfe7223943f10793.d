/root/repo/target/debug/deps/exp_fig8_interleaving-dfe7223943f10793.d: crates/bench/src/bin/exp_fig8_interleaving.rs

/root/repo/target/debug/deps/exp_fig8_interleaving-dfe7223943f10793: crates/bench/src/bin/exp_fig8_interleaving.rs

crates/bench/src/bin/exp_fig8_interleaving.rs:
