/root/repo/target/debug/deps/exp_fig8_interleaving-4c401f49c402a710.d: crates/bench/src/bin/exp_fig8_interleaving.rs

/root/repo/target/debug/deps/exp_fig8_interleaving-4c401f49c402a710: crates/bench/src/bin/exp_fig8_interleaving.rs

crates/bench/src/bin/exp_fig8_interleaving.rs:
