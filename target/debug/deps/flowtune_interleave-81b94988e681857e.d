/root/repo/target/debug/deps/flowtune_interleave-81b94988e681857e.d: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

/root/repo/target/debug/deps/flowtune_interleave-81b94988e681857e: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

crates/interleave/src/lib.rs:
crates/interleave/src/buildop.rs:
crates/interleave/src/deferred.rs:
crates/interleave/src/knapsack.rs:
crates/interleave/src/lp.rs:
crates/interleave/src/online.rs:
