/root/repo/target/debug/deps/fault_recovery-d4cad10e906baffe.d: crates/core/../../tests/fault_recovery.rs

/root/repo/target/debug/deps/fault_recovery-d4cad10e906baffe: crates/core/../../tests/fault_recovery.rs

crates/core/../../tests/fault_recovery.rs:
