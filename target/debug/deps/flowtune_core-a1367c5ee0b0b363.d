/root/repo/target/debug/deps/flowtune_core-a1367c5ee0b0b363.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

/root/repo/target/debug/deps/libflowtune_core-a1367c5ee0b0b363.rlib: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

/root/repo/target/debug/deps/libflowtune_core-a1367c5ee0b0b363.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/service.rs:
crates/core/src/tablefmt.rs:
