/root/repo/target/debug/deps/flowtune_cloud-8eb5e18a53a52674.d: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

/root/repo/target/debug/deps/libflowtune_cloud-8eb5e18a53a52674.rlib: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

/root/repo/target/debug/deps/libflowtune_cloud-8eb5e18a53a52674.rmeta: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

crates/cloud/src/lib.rs:
crates/cloud/src/fault.rs:
crates/cloud/src/perturb.rs:
crates/cloud/src/report.rs:
crates/cloud/src/sim.rs:
