/root/repo/target/debug/deps/exp_fig11_knapsack_quality-85b2cea87d89ff21.d: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

/root/repo/target/debug/deps/exp_fig11_knapsack_quality-85b2cea87d89ff21: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

crates/bench/src/bin/exp_fig11_knapsack_quality.rs:
