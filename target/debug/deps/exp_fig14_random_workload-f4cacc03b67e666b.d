/root/repo/target/debug/deps/exp_fig14_random_workload-f4cacc03b67e666b.d: crates/bench/src/bin/exp_fig14_random_workload.rs

/root/repo/target/debug/deps/exp_fig14_random_workload-f4cacc03b67e666b: crates/bench/src/bin/exp_fig14_random_workload.rs

crates/bench/src/bin/exp_fig14_random_workload.rs:
