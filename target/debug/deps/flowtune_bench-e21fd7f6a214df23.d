/root/repo/target/debug/deps/flowtune_bench-e21fd7f6a214df23.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/flowtune_bench-e21fd7f6a214df23: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
