/root/repo/target/debug/deps/exp_fig14_random_workload-c707cb98371c26f4.d: crates/bench/src/bin/exp_fig14_random_workload.rs

/root/repo/target/debug/deps/exp_fig14_random_workload-c707cb98371c26f4: crates/bench/src/bin/exp_fig14_random_workload.rs

crates/bench/src/bin/exp_fig14_random_workload.rs:
