/root/repo/target/debug/deps/exp_fig11_knapsack_quality-623421444c7805d7.d: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

/root/repo/target/debug/deps/exp_fig11_knapsack_quality-623421444c7805d7: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

crates/bench/src/bin/exp_fig11_knapsack_quality.rs:
