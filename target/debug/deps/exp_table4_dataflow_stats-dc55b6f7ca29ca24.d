/root/repo/target/debug/deps/exp_table4_dataflow_stats-dc55b6f7ca29ca24.d: crates/bench/src/bin/exp_table4_dataflow_stats.rs

/root/repo/target/debug/deps/exp_table4_dataflow_stats-dc55b6f7ca29ca24: crates/bench/src/bin/exp_table4_dataflow_stats.rs

crates/bench/src/bin/exp_table4_dataflow_stats.rs:
