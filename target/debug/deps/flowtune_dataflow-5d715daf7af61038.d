/root/repo/target/debug/deps/flowtune_dataflow-5d715daf7af61038.d: crates/dataflow/src/lib.rs crates/dataflow/src/apps.rs crates/dataflow/src/client.rs crates/dataflow/src/dag.rs crates/dataflow/src/dataflow.rs crates/dataflow/src/filedb.rs crates/dataflow/src/op.rs

/root/repo/target/debug/deps/libflowtune_dataflow-5d715daf7af61038.rlib: crates/dataflow/src/lib.rs crates/dataflow/src/apps.rs crates/dataflow/src/client.rs crates/dataflow/src/dag.rs crates/dataflow/src/dataflow.rs crates/dataflow/src/filedb.rs crates/dataflow/src/op.rs

/root/repo/target/debug/deps/libflowtune_dataflow-5d715daf7af61038.rmeta: crates/dataflow/src/lib.rs crates/dataflow/src/apps.rs crates/dataflow/src/client.rs crates/dataflow/src/dag.rs crates/dataflow/src/dataflow.rs crates/dataflow/src/filedb.rs crates/dataflow/src/op.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/apps.rs:
crates/dataflow/src/client.rs:
crates/dataflow/src/dag.rs:
crates/dataflow/src/dataflow.rs:
crates/dataflow/src/filedb.rs:
crates/dataflow/src/op.rs:
