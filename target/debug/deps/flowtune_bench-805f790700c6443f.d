/root/repo/target/debug/deps/flowtune_bench-805f790700c6443f.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/flowtune_bench-805f790700c6443f: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
