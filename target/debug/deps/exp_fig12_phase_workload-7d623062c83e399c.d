/root/repo/target/debug/deps/exp_fig12_phase_workload-7d623062c83e399c.d: crates/bench/src/bin/exp_fig12_phase_workload.rs

/root/repo/target/debug/deps/exp_fig12_phase_workload-7d623062c83e399c: crates/bench/src/bin/exp_fig12_phase_workload.rs

crates/bench/src/bin/exp_fig12_phase_workload.rs:
