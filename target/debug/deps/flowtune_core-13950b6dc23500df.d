/root/repo/target/debug/deps/flowtune_core-13950b6dc23500df.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

/root/repo/target/debug/deps/flowtune_core-13950b6dc23500df: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/service.rs:
crates/core/src/tablefmt.rs:
