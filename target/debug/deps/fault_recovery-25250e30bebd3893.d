/root/repo/target/debug/deps/fault_recovery-25250e30bebd3893.d: crates/core/../../tests/fault_recovery.rs

/root/repo/target/debug/deps/fault_recovery-25250e30bebd3893: crates/core/../../tests/fault_recovery.rs

crates/core/../../tests/fault_recovery.rs:
