/root/repo/target/debug/deps/flowtune_analyze-e0f0cc82aa44ba92.d: crates/analyze/src/main.rs

/root/repo/target/debug/deps/flowtune_analyze-e0f0cc82aa44ba92: crates/analyze/src/main.rs

crates/analyze/src/main.rs:
