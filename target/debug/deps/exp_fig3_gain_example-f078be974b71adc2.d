/root/repo/target/debug/deps/exp_fig3_gain_example-f078be974b71adc2.d: crates/bench/src/bin/exp_fig3_gain_example.rs

/root/repo/target/debug/deps/exp_fig3_gain_example-f078be974b71adc2: crates/bench/src/bin/exp_fig3_gain_example.rs

crates/bench/src/bin/exp_fig3_gain_example.rs:
