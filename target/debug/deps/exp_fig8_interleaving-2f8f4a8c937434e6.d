/root/repo/target/debug/deps/exp_fig8_interleaving-2f8f4a8c937434e6.d: crates/bench/src/bin/exp_fig8_interleaving.rs

/root/repo/target/debug/deps/exp_fig8_interleaving-2f8f4a8c937434e6: crates/bench/src/bin/exp_fig8_interleaving.rs

crates/bench/src/bin/exp_fig8_interleaving.rs:
