/root/repo/target/debug/deps/schedule_pipeline-b0af95e2204a5e55.d: crates/core/../../tests/schedule_pipeline.rs

/root/repo/target/debug/deps/schedule_pipeline-b0af95e2204a5e55: crates/core/../../tests/schedule_pipeline.rs

crates/core/../../tests/schedule_pipeline.rs:
