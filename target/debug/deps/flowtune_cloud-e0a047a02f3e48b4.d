/root/repo/target/debug/deps/flowtune_cloud-e0a047a02f3e48b4.d: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

/root/repo/target/debug/deps/libflowtune_cloud-e0a047a02f3e48b4.rlib: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

/root/repo/target/debug/deps/libflowtune_cloud-e0a047a02f3e48b4.rmeta: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

crates/cloud/src/lib.rs:
crates/cloud/src/fault.rs:
crates/cloud/src/perturb.rs:
crates/cloud/src/report.rs:
crates/cloud/src/sim.rs:
