/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-d75af55855f656fe.d: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-d75af55855f656fe: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

crates/bench/src/bin/exp_fig7_scheduler_comparison.rs:
