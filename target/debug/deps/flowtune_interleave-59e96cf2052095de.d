/root/repo/target/debug/deps/flowtune_interleave-59e96cf2052095de.d: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

/root/repo/target/debug/deps/libflowtune_interleave-59e96cf2052095de.rlib: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

/root/repo/target/debug/deps/libflowtune_interleave-59e96cf2052095de.rmeta: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

crates/interleave/src/lib.rs:
crates/interleave/src/buildop.rs:
crates/interleave/src/deferred.rs:
crates/interleave/src/knapsack.rs:
crates/interleave/src/lp.rs:
crates/interleave/src/online.rs:
