/root/repo/target/debug/deps/flowtune_bench-4057a477657df4ec.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libflowtune_bench-4057a477657df4ec.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libflowtune_bench-4057a477657df4ec.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
