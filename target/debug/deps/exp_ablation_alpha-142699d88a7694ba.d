/root/repo/target/debug/deps/exp_ablation_alpha-142699d88a7694ba.d: crates/bench/src/bin/exp_ablation_alpha.rs

/root/repo/target/debug/deps/exp_ablation_alpha-142699d88a7694ba: crates/bench/src/bin/exp_ablation_alpha.rs

crates/bench/src/bin/exp_ablation_alpha.rs:
