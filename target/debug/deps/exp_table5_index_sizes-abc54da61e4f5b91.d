/root/repo/target/debug/deps/exp_table5_index_sizes-abc54da61e4f5b91.d: crates/bench/src/bin/exp_table5_index_sizes.rs

/root/repo/target/debug/deps/exp_table5_index_sizes-abc54da61e4f5b91: crates/bench/src/bin/exp_table5_index_sizes.rs

crates/bench/src/bin/exp_table5_index_sizes.rs:
