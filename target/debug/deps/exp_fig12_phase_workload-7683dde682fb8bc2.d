/root/repo/target/debug/deps/exp_fig12_phase_workload-7683dde682fb8bc2.d: crates/bench/src/bin/exp_fig12_phase_workload.rs

/root/repo/target/debug/deps/exp_fig12_phase_workload-7683dde682fb8bc2: crates/bench/src/bin/exp_fig12_phase_workload.rs

crates/bench/src/bin/exp_fig12_phase_workload.rs:
