/root/repo/target/debug/deps/exp_fig4_ranking-83b1c1ace20aba82.d: crates/bench/src/bin/exp_fig4_ranking.rs

/root/repo/target/debug/deps/exp_fig4_ranking-83b1c1ace20aba82: crates/bench/src/bin/exp_fig4_ranking.rs

crates/bench/src/bin/exp_fig4_ranking.rs:
