/root/repo/target/debug/deps/exp_hetero_pool-0a42273a6af80bd4.d: crates/bench/src/bin/exp_hetero_pool.rs

/root/repo/target/debug/deps/exp_hetero_pool-0a42273a6af80bd4: crates/bench/src/bin/exp_hetero_pool.rs

crates/bench/src/bin/exp_hetero_pool.rs:
