/root/repo/target/debug/deps/end_to_end-771b5174031216c1.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-771b5174031216c1: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
