/root/repo/target/debug/deps/flowtune-e0d326f3fed59269.d: crates/core/src/bin/flowtune.rs

/root/repo/target/debug/deps/flowtune-e0d326f3fed59269: crates/core/src/bin/flowtune.rs

crates/core/src/bin/flowtune.rs:
