/root/repo/target/debug/deps/flowtune_obs-e18180448ff22098.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

/root/repo/target/debug/deps/libflowtune_obs-e18180448ff22098.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

/root/repo/target/debug/deps/libflowtune_obs-e18180448ff22098.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
