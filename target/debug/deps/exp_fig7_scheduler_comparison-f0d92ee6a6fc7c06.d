/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-f0d92ee6a6fc7c06.d: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-f0d92ee6a6fc7c06: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

crates/bench/src/bin/exp_fig7_scheduler_comparison.rs:
