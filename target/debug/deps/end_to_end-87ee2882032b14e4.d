/root/repo/target/debug/deps/end_to_end-87ee2882032b14e4.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-87ee2882032b14e4: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
