/root/repo/target/debug/deps/exp_fig3_gain_example-671e58e08e5bbecd.d: crates/bench/src/bin/exp_fig3_gain_example.rs

/root/repo/target/debug/deps/exp_fig3_gain_example-671e58e08e5bbecd: crates/bench/src/bin/exp_fig3_gain_example.rs

crates/bench/src/bin/exp_fig3_gain_example.rs:
