/root/repo/target/debug/deps/exp_ablation_alpha-e13b3598d3bc3ffd.d: crates/bench/src/bin/exp_ablation_alpha.rs

/root/repo/target/debug/deps/exp_ablation_alpha-e13b3598d3bc3ffd: crates/bench/src/bin/exp_ablation_alpha.rs

crates/bench/src/bin/exp_ablation_alpha.rs:
