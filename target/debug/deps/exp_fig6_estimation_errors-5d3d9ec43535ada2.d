/root/repo/target/debug/deps/exp_fig6_estimation_errors-5d3d9ec43535ada2.d: crates/bench/src/bin/exp_fig6_estimation_errors.rs

/root/repo/target/debug/deps/exp_fig6_estimation_errors-5d3d9ec43535ada2: crates/bench/src/bin/exp_fig6_estimation_errors.rs

crates/bench/src/bin/exp_fig6_estimation_errors.rs:
