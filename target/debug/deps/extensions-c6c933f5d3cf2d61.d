/root/repo/target/debug/deps/extensions-c6c933f5d3cf2d61.d: crates/core/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-c6c933f5d3cf2d61: crates/core/../../tests/extensions.rs

crates/core/../../tests/extensions.rs:
