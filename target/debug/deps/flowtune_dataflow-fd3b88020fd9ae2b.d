/root/repo/target/debug/deps/flowtune_dataflow-fd3b88020fd9ae2b.d: crates/dataflow/src/lib.rs crates/dataflow/src/apps.rs crates/dataflow/src/client.rs crates/dataflow/src/dag.rs crates/dataflow/src/dataflow.rs crates/dataflow/src/filedb.rs crates/dataflow/src/op.rs

/root/repo/target/debug/deps/flowtune_dataflow-fd3b88020fd9ae2b: crates/dataflow/src/lib.rs crates/dataflow/src/apps.rs crates/dataflow/src/client.rs crates/dataflow/src/dag.rs crates/dataflow/src/dataflow.rs crates/dataflow/src/filedb.rs crates/dataflow/src/op.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/apps.rs:
crates/dataflow/src/client.rs:
crates/dataflow/src/dag.rs:
crates/dataflow/src/dataflow.rs:
crates/dataflow/src/filedb.rs:
crates/dataflow/src/op.rs:
