/root/repo/target/debug/deps/flowtune-d6886641b226c0fa.d: crates/core/src/bin/flowtune.rs

/root/repo/target/debug/deps/flowtune-d6886641b226c0fa: crates/core/src/bin/flowtune.rs

crates/core/src/bin/flowtune.rs:
