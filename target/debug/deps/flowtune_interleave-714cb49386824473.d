/root/repo/target/debug/deps/flowtune_interleave-714cb49386824473.d: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

/root/repo/target/debug/deps/flowtune_interleave-714cb49386824473: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

crates/interleave/src/lib.rs:
crates/interleave/src/buildop.rs:
crates/interleave/src/deferred.rs:
crates/interleave/src/knapsack.rs:
crates/interleave/src/lp.rs:
crates/interleave/src/online.rs:
