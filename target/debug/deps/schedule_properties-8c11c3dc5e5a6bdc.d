/root/repo/target/debug/deps/schedule_properties-8c11c3dc5e5a6bdc.d: crates/sched/tests/schedule_properties.rs

/root/repo/target/debug/deps/schedule_properties-8c11c3dc5e5a6bdc: crates/sched/tests/schedule_properties.rs

crates/sched/tests/schedule_properties.rs:
