/root/repo/target/debug/deps/exp_ablation_alpha-34f686738a2f3478.d: crates/bench/src/bin/exp_ablation_alpha.rs

/root/repo/target/debug/deps/exp_ablation_alpha-34f686738a2f3478: crates/bench/src/bin/exp_ablation_alpha.rs

crates/bench/src/bin/exp_ablation_alpha.rs:
