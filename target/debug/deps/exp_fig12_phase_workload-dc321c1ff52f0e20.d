/root/repo/target/debug/deps/exp_fig12_phase_workload-dc321c1ff52f0e20.d: crates/bench/src/bin/exp_fig12_phase_workload.rs

/root/repo/target/debug/deps/exp_fig12_phase_workload-dc321c1ff52f0e20: crates/bench/src/bin/exp_fig12_phase_workload.rs

crates/bench/src/bin/exp_fig12_phase_workload.rs:
