/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-b673ba65ff0b7088.d: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

/root/repo/target/debug/deps/exp_fig7_scheduler_comparison-b673ba65ff0b7088: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

crates/bench/src/bin/exp_fig7_scheduler_comparison.rs:
