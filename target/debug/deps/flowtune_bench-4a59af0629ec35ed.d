/root/repo/target/debug/deps/flowtune_bench-4a59af0629ec35ed.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libflowtune_bench-4a59af0629ec35ed.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libflowtune_bench-4a59af0629ec35ed.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
