/root/repo/target/debug/deps/exp_fig11_knapsack_quality-fc7ccf9cb378db9e.d: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

/root/repo/target/debug/deps/exp_fig11_knapsack_quality-fc7ccf9cb378db9e: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

crates/bench/src/bin/exp_fig11_knapsack_quality.rs:
