/root/repo/target/debug/deps/flowtune_query-c0050b21c0dfc260.d: crates/query/src/lib.rs crates/query/src/group.rs crates/query/src/join.rs crates/query/src/lookup.rs crates/query/src/plan.rs crates/query/src/sort.rs crates/query/src/table6.rs crates/query/src/timer.rs

/root/repo/target/debug/deps/flowtune_query-c0050b21c0dfc260: crates/query/src/lib.rs crates/query/src/group.rs crates/query/src/join.rs crates/query/src/lookup.rs crates/query/src/plan.rs crates/query/src/sort.rs crates/query/src/table6.rs crates/query/src/timer.rs

crates/query/src/lib.rs:
crates/query/src/group.rs:
crates/query/src/join.rs:
crates/query/src/lookup.rs:
crates/query/src/plan.rs:
crates/query/src/sort.rs:
crates/query/src/table6.rs:
crates/query/src/timer.rs:
