/root/repo/target/debug/deps/exp_fig6_estimation_errors-0ab4e50ced0652d3.d: crates/bench/src/bin/exp_fig6_estimation_errors.rs

/root/repo/target/debug/deps/exp_fig6_estimation_errors-0ab4e50ced0652d3: crates/bench/src/bin/exp_fig6_estimation_errors.rs

crates/bench/src/bin/exp_fig6_estimation_errors.rs:
