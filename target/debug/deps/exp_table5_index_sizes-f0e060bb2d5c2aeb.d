/root/repo/target/debug/deps/exp_table5_index_sizes-f0e060bb2d5c2aeb.d: crates/bench/src/bin/exp_table5_index_sizes.rs

/root/repo/target/debug/deps/exp_table5_index_sizes-f0e060bb2d5c2aeb: crates/bench/src/bin/exp_table5_index_sizes.rs

crates/bench/src/bin/exp_table5_index_sizes.rs:
