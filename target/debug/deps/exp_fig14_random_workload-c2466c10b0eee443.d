/root/repo/target/debug/deps/exp_fig14_random_workload-c2466c10b0eee443.d: crates/bench/src/bin/exp_fig14_random_workload.rs

/root/repo/target/debug/deps/exp_fig14_random_workload-c2466c10b0eee443: crates/bench/src/bin/exp_fig14_random_workload.rs

crates/bench/src/bin/exp_fig14_random_workload.rs:
