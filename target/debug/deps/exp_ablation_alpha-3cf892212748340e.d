/root/repo/target/debug/deps/exp_ablation_alpha-3cf892212748340e.d: crates/bench/src/bin/exp_ablation_alpha.rs

/root/repo/target/debug/deps/exp_ablation_alpha-3cf892212748340e: crates/bench/src/bin/exp_ablation_alpha.rs

crates/bench/src/bin/exp_ablation_alpha.rs:
