/root/repo/target/release/deps/exp_fig12_phase_workload-11097aef4a6d251c.d: crates/bench/src/bin/exp_fig12_phase_workload.rs

/root/repo/target/release/deps/exp_fig12_phase_workload-11097aef4a6d251c: crates/bench/src/bin/exp_fig12_phase_workload.rs

crates/bench/src/bin/exp_fig12_phase_workload.rs:
