/root/repo/target/release/deps/exp_fig14_random_workload-7c3e0c6a6d13e9ca.d: crates/bench/src/bin/exp_fig14_random_workload.rs

/root/repo/target/release/deps/exp_fig14_random_workload-7c3e0c6a6d13e9ca: crates/bench/src/bin/exp_fig14_random_workload.rs

crates/bench/src/bin/exp_fig14_random_workload.rs:
