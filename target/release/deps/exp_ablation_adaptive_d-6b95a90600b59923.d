/root/repo/target/release/deps/exp_ablation_adaptive_d-6b95a90600b59923.d: crates/bench/src/bin/exp_ablation_adaptive_d.rs

/root/repo/target/release/deps/exp_ablation_adaptive_d-6b95a90600b59923: crates/bench/src/bin/exp_ablation_adaptive_d.rs

crates/bench/src/bin/exp_ablation_adaptive_d.rs:
