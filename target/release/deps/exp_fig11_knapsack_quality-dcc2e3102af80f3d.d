/root/repo/target/release/deps/exp_fig11_knapsack_quality-dcc2e3102af80f3d.d: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

/root/repo/target/release/deps/exp_fig11_knapsack_quality-dcc2e3102af80f3d: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

crates/bench/src/bin/exp_fig11_knapsack_quality.rs:
