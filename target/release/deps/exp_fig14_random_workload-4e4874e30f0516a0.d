/root/repo/target/release/deps/exp_fig14_random_workload-4e4874e30f0516a0.d: crates/bench/src/bin/exp_fig14_random_workload.rs

/root/repo/target/release/deps/exp_fig14_random_workload-4e4874e30f0516a0: crates/bench/src/bin/exp_fig14_random_workload.rs

crates/bench/src/bin/exp_fig14_random_workload.rs:
