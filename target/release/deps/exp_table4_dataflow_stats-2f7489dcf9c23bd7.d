/root/repo/target/release/deps/exp_table4_dataflow_stats-2f7489dcf9c23bd7.d: crates/bench/src/bin/exp_table4_dataflow_stats.rs

/root/repo/target/release/deps/exp_table4_dataflow_stats-2f7489dcf9c23bd7: crates/bench/src/bin/exp_table4_dataflow_stats.rs

crates/bench/src/bin/exp_table4_dataflow_stats.rs:
