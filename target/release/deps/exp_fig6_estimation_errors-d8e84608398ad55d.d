/root/repo/target/release/deps/exp_fig6_estimation_errors-d8e84608398ad55d.d: crates/bench/src/bin/exp_fig6_estimation_errors.rs

/root/repo/target/release/deps/exp_fig6_estimation_errors-d8e84608398ad55d: crates/bench/src/bin/exp_fig6_estimation_errors.rs

crates/bench/src/bin/exp_fig6_estimation_errors.rs:
