/root/repo/target/release/deps/exp_fig6_estimation_errors-953098a66bca9e4f.d: crates/bench/src/bin/exp_fig6_estimation_errors.rs

/root/repo/target/release/deps/exp_fig6_estimation_errors-953098a66bca9e4f: crates/bench/src/bin/exp_fig6_estimation_errors.rs

crates/bench/src/bin/exp_fig6_estimation_errors.rs:
