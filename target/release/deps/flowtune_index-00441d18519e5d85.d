/root/repo/target/release/deps/flowtune_index-00441d18519e5d85.d: crates/index/src/lib.rs crates/index/src/bptree.rs crates/index/src/catalog.rs crates/index/src/hash.rs crates/index/src/model.rs

/root/repo/target/release/deps/libflowtune_index-00441d18519e5d85.rlib: crates/index/src/lib.rs crates/index/src/bptree.rs crates/index/src/catalog.rs crates/index/src/hash.rs crates/index/src/model.rs

/root/repo/target/release/deps/libflowtune_index-00441d18519e5d85.rmeta: crates/index/src/lib.rs crates/index/src/bptree.rs crates/index/src/catalog.rs crates/index/src/hash.rs crates/index/src/model.rs

crates/index/src/lib.rs:
crates/index/src/bptree.rs:
crates/index/src/catalog.rs:
crates/index/src/hash.rs:
crates/index/src/model.rs:
