/root/repo/target/release/deps/exp_ablation_deferred-f4dbc81f0de561ff.d: crates/bench/src/bin/exp_ablation_deferred.rs

/root/repo/target/release/deps/exp_ablation_deferred-f4dbc81f0de561ff: crates/bench/src/bin/exp_ablation_deferred.rs

crates/bench/src/bin/exp_ablation_deferred.rs:
