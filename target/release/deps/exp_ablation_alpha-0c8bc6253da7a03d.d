/root/repo/target/release/deps/exp_ablation_alpha-0c8bc6253da7a03d.d: crates/bench/src/bin/exp_ablation_alpha.rs

/root/repo/target/release/deps/exp_ablation_alpha-0c8bc6253da7a03d: crates/bench/src/bin/exp_ablation_alpha.rs

crates/bench/src/bin/exp_ablation_alpha.rs:
