/root/repo/target/release/deps/exp_table6_speedups-6802fe27014a658e.d: crates/bench/src/bin/exp_table6_speedups.rs

/root/repo/target/release/deps/exp_table6_speedups-6802fe27014a658e: crates/bench/src/bin/exp_table6_speedups.rs

crates/bench/src/bin/exp_table6_speedups.rs:
