/root/repo/target/release/deps/exp_fig13_adaptation-84d97c154ad61963.d: crates/bench/src/bin/exp_fig13_adaptation.rs

/root/repo/target/release/deps/exp_fig13_adaptation-84d97c154ad61963: crates/bench/src/bin/exp_fig13_adaptation.rs

crates/bench/src/bin/exp_fig13_adaptation.rs:
