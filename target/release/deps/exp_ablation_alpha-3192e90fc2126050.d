/root/repo/target/release/deps/exp_ablation_alpha-3192e90fc2126050.d: crates/bench/src/bin/exp_ablation_alpha.rs

/root/repo/target/release/deps/exp_ablation_alpha-3192e90fc2126050: crates/bench/src/bin/exp_ablation_alpha.rs

crates/bench/src/bin/exp_ablation_alpha.rs:
