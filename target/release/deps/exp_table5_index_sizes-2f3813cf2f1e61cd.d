/root/repo/target/release/deps/exp_table5_index_sizes-2f3813cf2f1e61cd.d: crates/bench/src/bin/exp_table5_index_sizes.rs

/root/repo/target/release/deps/exp_table5_index_sizes-2f3813cf2f1e61cd: crates/bench/src/bin/exp_table5_index_sizes.rs

crates/bench/src/bin/exp_table5_index_sizes.rs:
