/root/repo/target/release/deps/flowtune_interleave-8ac5784f4a5344d8.d: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

/root/repo/target/release/deps/libflowtune_interleave-8ac5784f4a5344d8.rlib: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

/root/repo/target/release/deps/libflowtune_interleave-8ac5784f4a5344d8.rmeta: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

crates/interleave/src/lib.rs:
crates/interleave/src/buildop.rs:
crates/interleave/src/deferred.rs:
crates/interleave/src/knapsack.rs:
crates/interleave/src/lp.rs:
crates/interleave/src/online.rs:
