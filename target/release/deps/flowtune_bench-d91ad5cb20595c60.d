/root/repo/target/release/deps/flowtune_bench-d91ad5cb20595c60.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libflowtune_bench-d91ad5cb20595c60.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libflowtune_bench-d91ad5cb20595c60.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
