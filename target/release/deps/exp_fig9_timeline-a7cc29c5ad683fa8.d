/root/repo/target/release/deps/exp_fig9_timeline-a7cc29c5ad683fa8.d: crates/bench/src/bin/exp_fig9_timeline.rs

/root/repo/target/release/deps/exp_fig9_timeline-a7cc29c5ad683fa8: crates/bench/src/bin/exp_fig9_timeline.rs

crates/bench/src/bin/exp_fig9_timeline.rs:
