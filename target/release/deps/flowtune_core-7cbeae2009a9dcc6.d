/root/repo/target/release/deps/flowtune_core-7cbeae2009a9dcc6.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/recovery.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

/root/repo/target/release/deps/libflowtune_core-7cbeae2009a9dcc6.rlib: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/recovery.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

/root/repo/target/release/deps/libflowtune_core-7cbeae2009a9dcc6.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/policy.rs crates/core/src/recovery.rs crates/core/src/report.rs crates/core/src/service.rs crates/core/src/tablefmt.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/policy.rs:
crates/core/src/recovery.rs:
crates/core/src/report.rs:
crates/core/src/service.rs:
crates/core/src/tablefmt.rs:
