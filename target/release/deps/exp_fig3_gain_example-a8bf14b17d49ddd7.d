/root/repo/target/release/deps/exp_fig3_gain_example-a8bf14b17d49ddd7.d: crates/bench/src/bin/exp_fig3_gain_example.rs

/root/repo/target/release/deps/exp_fig3_gain_example-a8bf14b17d49ddd7: crates/bench/src/bin/exp_fig3_gain_example.rs

crates/bench/src/bin/exp_fig3_gain_example.rs:
