/root/repo/target/release/deps/exp_fig4_ranking-325ca03d1ead809c.d: crates/bench/src/bin/exp_fig4_ranking.rs

/root/repo/target/release/deps/exp_fig4_ranking-325ca03d1ead809c: crates/bench/src/bin/exp_fig4_ranking.rs

crates/bench/src/bin/exp_fig4_ranking.rs:
