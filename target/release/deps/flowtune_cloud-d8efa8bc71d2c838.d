/root/repo/target/release/deps/flowtune_cloud-d8efa8bc71d2c838.d: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

/root/repo/target/release/deps/libflowtune_cloud-d8efa8bc71d2c838.rlib: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

/root/repo/target/release/deps/libflowtune_cloud-d8efa8bc71d2c838.rmeta: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

crates/cloud/src/lib.rs:
crates/cloud/src/fault.rs:
crates/cloud/src/perturb.rs:
crates/cloud/src/report.rs:
crates/cloud/src/sim.rs:
