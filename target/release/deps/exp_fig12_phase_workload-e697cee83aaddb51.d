/root/repo/target/release/deps/exp_fig12_phase_workload-e697cee83aaddb51.d: crates/bench/src/bin/exp_fig12_phase_workload.rs

/root/repo/target/release/deps/exp_fig12_phase_workload-e697cee83aaddb51: crates/bench/src/bin/exp_fig12_phase_workload.rs

crates/bench/src/bin/exp_fig12_phase_workload.rs:
