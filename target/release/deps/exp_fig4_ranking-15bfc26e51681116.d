/root/repo/target/release/deps/exp_fig4_ranking-15bfc26e51681116.d: crates/bench/src/bin/exp_fig4_ranking.rs

/root/repo/target/release/deps/exp_fig4_ranking-15bfc26e51681116: crates/bench/src/bin/exp_fig4_ranking.rs

crates/bench/src/bin/exp_fig4_ranking.rs:
