/root/repo/target/release/deps/exp_fig8_interleaving-b7f6cfebda51e9a6.d: crates/bench/src/bin/exp_fig8_interleaving.rs

/root/repo/target/release/deps/exp_fig8_interleaving-b7f6cfebda51e9a6: crates/bench/src/bin/exp_fig8_interleaving.rs

crates/bench/src/bin/exp_fig8_interleaving.rs:
