/root/repo/target/release/deps/exp_fault_matrix-d19ea1c33c7ee0b5.d: crates/bench/src/bin/exp_fault_matrix.rs

/root/repo/target/release/deps/exp_fault_matrix-d19ea1c33c7ee0b5: crates/bench/src/bin/exp_fault_matrix.rs

crates/bench/src/bin/exp_fault_matrix.rs:
