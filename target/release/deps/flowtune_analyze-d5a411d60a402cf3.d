/root/repo/target/release/deps/flowtune_analyze-d5a411d60a402cf3.d: crates/analyze/src/lib.rs crates/analyze/src/rules/mod.rs crates/analyze/src/rules/dep_hygiene.rs crates/analyze/src/rules/determinism.rs crates/analyze/src/rules/newtype.rs crates/analyze/src/rules/ordered_iteration.rs crates/analyze/src/rules/panic_hygiene.rs crates/analyze/src/scan.rs crates/analyze/src/workspace.rs

/root/repo/target/release/deps/libflowtune_analyze-d5a411d60a402cf3.rlib: crates/analyze/src/lib.rs crates/analyze/src/rules/mod.rs crates/analyze/src/rules/dep_hygiene.rs crates/analyze/src/rules/determinism.rs crates/analyze/src/rules/newtype.rs crates/analyze/src/rules/ordered_iteration.rs crates/analyze/src/rules/panic_hygiene.rs crates/analyze/src/scan.rs crates/analyze/src/workspace.rs

/root/repo/target/release/deps/libflowtune_analyze-d5a411d60a402cf3.rmeta: crates/analyze/src/lib.rs crates/analyze/src/rules/mod.rs crates/analyze/src/rules/dep_hygiene.rs crates/analyze/src/rules/determinism.rs crates/analyze/src/rules/newtype.rs crates/analyze/src/rules/ordered_iteration.rs crates/analyze/src/rules/panic_hygiene.rs crates/analyze/src/scan.rs crates/analyze/src/workspace.rs

crates/analyze/src/lib.rs:
crates/analyze/src/rules/mod.rs:
crates/analyze/src/rules/dep_hygiene.rs:
crates/analyze/src/rules/determinism.rs:
crates/analyze/src/rules/newtype.rs:
crates/analyze/src/rules/ordered_iteration.rs:
crates/analyze/src/rules/panic_hygiene.rs:
crates/analyze/src/scan.rs:
crates/analyze/src/workspace.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analyze
