/root/repo/target/release/deps/exp_ablation_deferred-469f9bc276cdae19.d: crates/bench/src/bin/exp_ablation_deferred.rs

/root/repo/target/release/deps/exp_ablation_deferred-469f9bc276cdae19: crates/bench/src/bin/exp_ablation_deferred.rs

crates/bench/src/bin/exp_ablation_deferred.rs:
