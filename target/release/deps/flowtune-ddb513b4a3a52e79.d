/root/repo/target/release/deps/flowtune-ddb513b4a3a52e79.d: crates/core/src/bin/flowtune.rs

/root/repo/target/release/deps/flowtune-ddb513b4a3a52e79: crates/core/src/bin/flowtune.rs

crates/core/src/bin/flowtune.rs:
