/root/repo/target/release/deps/flowtune_sched-307676be944a4e7d.d: crates/sched/src/lib.rs crates/sched/src/hetero.rs crates/sched/src/online_lb.rs crates/sched/src/schedule.rs crates/sched/src/skyline.rs crates/sched/src/slots.rs

/root/repo/target/release/deps/libflowtune_sched-307676be944a4e7d.rlib: crates/sched/src/lib.rs crates/sched/src/hetero.rs crates/sched/src/online_lb.rs crates/sched/src/schedule.rs crates/sched/src/skyline.rs crates/sched/src/slots.rs

/root/repo/target/release/deps/libflowtune_sched-307676be944a4e7d.rmeta: crates/sched/src/lib.rs crates/sched/src/hetero.rs crates/sched/src/online_lb.rs crates/sched/src/schedule.rs crates/sched/src/skyline.rs crates/sched/src/slots.rs

crates/sched/src/lib.rs:
crates/sched/src/hetero.rs:
crates/sched/src/online_lb.rs:
crates/sched/src/schedule.rs:
crates/sched/src/skyline.rs:
crates/sched/src/slots.rs:
