/root/repo/target/release/deps/exp_ablation_adaptive_d-396fbfb1763a7cc7.d: crates/bench/src/bin/exp_ablation_adaptive_d.rs

/root/repo/target/release/deps/exp_ablation_adaptive_d-396fbfb1763a7cc7: crates/bench/src/bin/exp_ablation_adaptive_d.rs

crates/bench/src/bin/exp_ablation_adaptive_d.rs:
