/root/repo/target/release/deps/flowtune_query-e83fbeb97fc8d479.d: crates/query/src/lib.rs crates/query/src/group.rs crates/query/src/join.rs crates/query/src/lookup.rs crates/query/src/plan.rs crates/query/src/sort.rs crates/query/src/table6.rs crates/query/src/timer.rs

/root/repo/target/release/deps/libflowtune_query-e83fbeb97fc8d479.rlib: crates/query/src/lib.rs crates/query/src/group.rs crates/query/src/join.rs crates/query/src/lookup.rs crates/query/src/plan.rs crates/query/src/sort.rs crates/query/src/table6.rs crates/query/src/timer.rs

/root/repo/target/release/deps/libflowtune_query-e83fbeb97fc8d479.rmeta: crates/query/src/lib.rs crates/query/src/group.rs crates/query/src/join.rs crates/query/src/lookup.rs crates/query/src/plan.rs crates/query/src/sort.rs crates/query/src/table6.rs crates/query/src/timer.rs

crates/query/src/lib.rs:
crates/query/src/group.rs:
crates/query/src/join.rs:
crates/query/src/lookup.rs:
crates/query/src/plan.rs:
crates/query/src/sort.rs:
crates/query/src/table6.rs:
crates/query/src/timer.rs:
