/root/repo/target/release/deps/flowtune_storage-47ba1136c4caac81.d: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/column.rs crates/storage/src/lineitem.rs crates/storage/src/schema.rs crates/storage/src/store.rs crates/storage/src/table.rs crates/storage/src/value.rs

/root/repo/target/release/deps/libflowtune_storage-47ba1136c4caac81.rlib: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/column.rs crates/storage/src/lineitem.rs crates/storage/src/schema.rs crates/storage/src/store.rs crates/storage/src/table.rs crates/storage/src/value.rs

/root/repo/target/release/deps/libflowtune_storage-47ba1136c4caac81.rmeta: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/column.rs crates/storage/src/lineitem.rs crates/storage/src/schema.rs crates/storage/src/store.rs crates/storage/src/table.rs crates/storage/src/value.rs

crates/storage/src/lib.rs:
crates/storage/src/cache.rs:
crates/storage/src/column.rs:
crates/storage/src/lineitem.rs:
crates/storage/src/schema.rs:
crates/storage/src/store.rs:
crates/storage/src/table.rs:
crates/storage/src/value.rs:
