/root/repo/target/release/deps/flowtune_analyze-3f1ce0badf88b5d2.d: crates/analyze/src/main.rs

/root/repo/target/release/deps/flowtune_analyze-3f1ce0badf88b5d2: crates/analyze/src/main.rs

crates/analyze/src/main.rs:
