/root/repo/target/release/deps/exp_table6_speedups-c269605bce5404a9.d: crates/bench/src/bin/exp_table6_speedups.rs

/root/repo/target/release/deps/exp_table6_speedups-c269605bce5404a9: crates/bench/src/bin/exp_table6_speedups.rs

crates/bench/src/bin/exp_table6_speedups.rs:
