/root/repo/target/release/deps/exp_fig8_interleaving-eeb9ca56cb424142.d: crates/bench/src/bin/exp_fig8_interleaving.rs

/root/repo/target/release/deps/exp_fig8_interleaving-eeb9ca56cb424142: crates/bench/src/bin/exp_fig8_interleaving.rs

crates/bench/src/bin/exp_fig8_interleaving.rs:
