/root/repo/target/release/deps/exp_fig3_gain_example-84c07ec53cab05c7.d: crates/bench/src/bin/exp_fig3_gain_example.rs

/root/repo/target/release/deps/exp_fig3_gain_example-84c07ec53cab05c7: crates/bench/src/bin/exp_fig3_gain_example.rs

crates/bench/src/bin/exp_fig3_gain_example.rs:
