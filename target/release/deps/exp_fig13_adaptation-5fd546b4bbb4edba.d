/root/repo/target/release/deps/exp_fig13_adaptation-5fd546b4bbb4edba.d: crates/bench/src/bin/exp_fig13_adaptation.rs

/root/repo/target/release/deps/exp_fig13_adaptation-5fd546b4bbb4edba: crates/bench/src/bin/exp_fig13_adaptation.rs

crates/bench/src/bin/exp_fig13_adaptation.rs:
