/root/repo/target/release/deps/flowtune_interleave-5868e68154f599dc.d: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

/root/repo/target/release/deps/libflowtune_interleave-5868e68154f599dc.rlib: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

/root/repo/target/release/deps/libflowtune_interleave-5868e68154f599dc.rmeta: crates/interleave/src/lib.rs crates/interleave/src/buildop.rs crates/interleave/src/deferred.rs crates/interleave/src/knapsack.rs crates/interleave/src/lp.rs crates/interleave/src/online.rs

crates/interleave/src/lib.rs:
crates/interleave/src/buildop.rs:
crates/interleave/src/deferred.rs:
crates/interleave/src/knapsack.rs:
crates/interleave/src/lp.rs:
crates/interleave/src/online.rs:
