/root/repo/target/release/deps/exp_fig11_knapsack_quality-dc933563fe13badb.d: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

/root/repo/target/release/deps/exp_fig11_knapsack_quality-dc933563fe13badb: crates/bench/src/bin/exp_fig11_knapsack_quality.rs

crates/bench/src/bin/exp_fig11_knapsack_quality.rs:
