/root/repo/target/release/deps/flowtune_bench-1e8762cc909e605b.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libflowtune_bench-1e8762cc909e605b.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libflowtune_bench-1e8762cc909e605b.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
