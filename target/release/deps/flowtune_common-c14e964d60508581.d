/root/repo/target/release/deps/flowtune_common-c14e964d60508581.d: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/histogram.rs crates/common/src/ids.rs crates/common/src/money.rs crates/common/src/pricing.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs

/root/repo/target/release/deps/libflowtune_common-c14e964d60508581.rlib: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/histogram.rs crates/common/src/ids.rs crates/common/src/money.rs crates/common/src/pricing.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs

/root/repo/target/release/deps/libflowtune_common-c14e964d60508581.rmeta: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/histogram.rs crates/common/src/ids.rs crates/common/src/money.rs crates/common/src/pricing.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/time.rs

crates/common/src/lib.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/histogram.rs:
crates/common/src/ids.rs:
crates/common/src/money.rs:
crates/common/src/pricing.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/time.rs:
