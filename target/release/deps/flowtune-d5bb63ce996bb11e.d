/root/repo/target/release/deps/flowtune-d5bb63ce996bb11e.d: crates/core/src/bin/flowtune.rs

/root/repo/target/release/deps/flowtune-d5bb63ce996bb11e: crates/core/src/bin/flowtune.rs

crates/core/src/bin/flowtune.rs:
