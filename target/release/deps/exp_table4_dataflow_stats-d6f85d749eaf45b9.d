/root/repo/target/release/deps/exp_table4_dataflow_stats-d6f85d749eaf45b9.d: crates/bench/src/bin/exp_table4_dataflow_stats.rs

/root/repo/target/release/deps/exp_table4_dataflow_stats-d6f85d749eaf45b9: crates/bench/src/bin/exp_table4_dataflow_stats.rs

crates/bench/src/bin/exp_table4_dataflow_stats.rs:
