/root/repo/target/release/deps/exp_hetero_pool-04d5736336f00164.d: crates/bench/src/bin/exp_hetero_pool.rs

/root/repo/target/release/deps/exp_hetero_pool-04d5736336f00164: crates/bench/src/bin/exp_hetero_pool.rs

crates/bench/src/bin/exp_hetero_pool.rs:
