/root/repo/target/release/deps/exp_table5_index_sizes-03bd2b3299c82967.d: crates/bench/src/bin/exp_table5_index_sizes.rs

/root/repo/target/release/deps/exp_table5_index_sizes-03bd2b3299c82967: crates/bench/src/bin/exp_table5_index_sizes.rs

crates/bench/src/bin/exp_table5_index_sizes.rs:
