/root/repo/target/release/deps/exp_fig7_scheduler_comparison-71f52c8677a0ff8d.d: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

/root/repo/target/release/deps/exp_fig7_scheduler_comparison-71f52c8677a0ff8d: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

crates/bench/src/bin/exp_fig7_scheduler_comparison.rs:
