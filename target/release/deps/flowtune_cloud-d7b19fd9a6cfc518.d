/root/repo/target/release/deps/flowtune_cloud-d7b19fd9a6cfc518.d: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

/root/repo/target/release/deps/libflowtune_cloud-d7b19fd9a6cfc518.rlib: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

/root/repo/target/release/deps/libflowtune_cloud-d7b19fd9a6cfc518.rmeta: crates/cloud/src/lib.rs crates/cloud/src/fault.rs crates/cloud/src/perturb.rs crates/cloud/src/report.rs crates/cloud/src/sim.rs

crates/cloud/src/lib.rs:
crates/cloud/src/fault.rs:
crates/cloud/src/perturb.rs:
crates/cloud/src/report.rs:
crates/cloud/src/sim.rs:
