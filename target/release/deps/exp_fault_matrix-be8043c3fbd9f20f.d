/root/repo/target/release/deps/exp_fault_matrix-be8043c3fbd9f20f.d: crates/bench/src/bin/exp_fault_matrix.rs

/root/repo/target/release/deps/exp_fault_matrix-be8043c3fbd9f20f: crates/bench/src/bin/exp_fault_matrix.rs

crates/bench/src/bin/exp_fault_matrix.rs:
