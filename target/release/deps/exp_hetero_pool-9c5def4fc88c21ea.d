/root/repo/target/release/deps/exp_hetero_pool-9c5def4fc88c21ea.d: crates/bench/src/bin/exp_hetero_pool.rs

/root/repo/target/release/deps/exp_hetero_pool-9c5def4fc88c21ea: crates/bench/src/bin/exp_hetero_pool.rs

crates/bench/src/bin/exp_hetero_pool.rs:
