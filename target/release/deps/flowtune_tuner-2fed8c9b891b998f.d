/root/repo/target/release/deps/flowtune_tuner-2fed8c9b891b998f.d: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

/root/repo/target/release/deps/libflowtune_tuner-2fed8c9b891b998f.rlib: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

/root/repo/target/release/deps/libflowtune_tuner-2fed8c9b891b998f.rmeta: crates/tuner/src/lib.rs crates/tuner/src/adaptive.rs crates/tuner/src/estimate.rs crates/tuner/src/gain.rs crates/tuner/src/history.rs crates/tuner/src/rank.rs crates/tuner/src/tuning.rs

crates/tuner/src/lib.rs:
crates/tuner/src/adaptive.rs:
crates/tuner/src/estimate.rs:
crates/tuner/src/gain.rs:
crates/tuner/src/history.rs:
crates/tuner/src/rank.rs:
crates/tuner/src/tuning.rs:
