/root/repo/target/release/deps/exp_fig9_timeline-90c8e63b66e6e75a.d: crates/bench/src/bin/exp_fig9_timeline.rs

/root/repo/target/release/deps/exp_fig9_timeline-90c8e63b66e6e75a: crates/bench/src/bin/exp_fig9_timeline.rs

crates/bench/src/bin/exp_fig9_timeline.rs:
