/root/repo/target/release/deps/flowtune_obs-95d6256a1a1fa9e3.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

/root/repo/target/release/deps/libflowtune_obs-95d6256a1a1fa9e3.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

/root/repo/target/release/deps/libflowtune_obs-95d6256a1a1fa9e3.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
