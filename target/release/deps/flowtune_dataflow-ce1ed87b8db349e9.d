/root/repo/target/release/deps/flowtune_dataflow-ce1ed87b8db349e9.d: crates/dataflow/src/lib.rs crates/dataflow/src/apps.rs crates/dataflow/src/client.rs crates/dataflow/src/dag.rs crates/dataflow/src/dataflow.rs crates/dataflow/src/filedb.rs crates/dataflow/src/op.rs

/root/repo/target/release/deps/libflowtune_dataflow-ce1ed87b8db349e9.rlib: crates/dataflow/src/lib.rs crates/dataflow/src/apps.rs crates/dataflow/src/client.rs crates/dataflow/src/dag.rs crates/dataflow/src/dataflow.rs crates/dataflow/src/filedb.rs crates/dataflow/src/op.rs

/root/repo/target/release/deps/libflowtune_dataflow-ce1ed87b8db349e9.rmeta: crates/dataflow/src/lib.rs crates/dataflow/src/apps.rs crates/dataflow/src/client.rs crates/dataflow/src/dag.rs crates/dataflow/src/dataflow.rs crates/dataflow/src/filedb.rs crates/dataflow/src/op.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/apps.rs:
crates/dataflow/src/client.rs:
crates/dataflow/src/dag.rs:
crates/dataflow/src/dataflow.rs:
crates/dataflow/src/filedb.rs:
crates/dataflow/src/op.rs:
