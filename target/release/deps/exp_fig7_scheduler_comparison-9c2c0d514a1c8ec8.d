/root/repo/target/release/deps/exp_fig7_scheduler_comparison-9c2c0d514a1c8ec8.d: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

/root/repo/target/release/deps/exp_fig7_scheduler_comparison-9c2c0d514a1c8ec8: crates/bench/src/bin/exp_fig7_scheduler_comparison.rs

crates/bench/src/bin/exp_fig7_scheduler_comparison.rs:
