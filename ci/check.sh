#!/usr/bin/env bash
# Tier-1 verification gate. Run from the repository root:
#
#   ./ci/check.sh
#
# Every step runs with --offline: the workspace has a strict
# zero-external-dependency policy (DESIGN §7), so a checkout with no
# network and no registry cache must build, test, and verify cleanly.
# A step that would touch the network is itself a policy violation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo clippy --offline --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> fault determinism suite"
cargo test -q --offline -p flowtune-cloud --test fault_determinism
cargo test -q --offline -p flowtune-core --test fault_recovery
cargo test -q --offline -p flowtune-core --test fault_crash_recovery

echo "==> exp_fault_matrix --smoke"
cargo run -q --offline --release -p flowtune-bench --bin exp_fault_matrix -- --smoke

# All throwaway output from the smoke steps below lands in one scratch
# dir owned by a single cleanup handler. (Stacking per-step
# `trap ... EXIT` lines overwrites the previous handler and leaks the
# earlier dirs — keep every temp path inside $scratch instead.)
scratch="$(mktemp -d)"
cleanup() { rm -rf "$scratch"; }
trap cleanup EXIT

echo "==> bench_sched --smoke (scheduler perf baseline harness)"
# Smoke-sized run into the scratch dir: verifies the optimized-vs-
# reference harness end to end (exit nonzero on any benchmark error)
# without touching the committed full-run BENCH_sched.json baseline.
cargo run -q --offline --release -p flowtune-bench --bin bench_sched -- \
  --smoke --out "$scratch/BENCH_sched.json"
test -s "$scratch/BENCH_sched.json"

echo "==> bench_interleave --smoke (interleaver perf baseline harness)"
cargo run -q --offline --release -p flowtune-bench --bin bench_interleave -- \
  --smoke --out "$scratch/BENCH_interleave.json"
test -s "$scratch/BENCH_interleave.json"

echo "==> committed perf baselines match the harness schemas"
# The smoke runs above just wrote fresh documents; their schema lines
# must agree with the committed full-run baselines, so a harness schema
# bump cannot land without regenerating BENCH_sched.json and
# BENCH_interleave.json (the speedup bars over the committed files live
# in crates/bench/tests/bench_baselines.rs, under plain `cargo test`).
diff <(grep '"schema"' "$scratch/BENCH_sched.json") \
     <(grep '"schema"' BENCH_sched.json)
diff <(grep '"schema"' "$scratch/BENCH_interleave.json") \
     <(grep '"schema"' BENCH_interleave.json)

echo "==> exp_table6_composite --smoke (composite speedup matrix vs golden)"
# The smoke report is fully deterministic (modelled costs and
# touched-row counts, no wall times), so it diffs byte-for-byte.
cargo run -q --offline --release -p flowtune-bench --bin exp_table6_composite -- \
  --smoke > "$scratch/table6_composite.txt"
diff -u tests/golden/table6_composite_smoke.txt "$scratch/table6_composite.txt"

echo "==> observability golden trace (smoke)"
cargo run -q --offline --release -p flowtune-core --bin flowtune -- \
  --quanta 4 --seed 1 --concurrency 1 \
  --trace-out "$scratch/trace.jsonl" --metrics-out "$scratch/metrics.json" \
  > /dev/null
diff -u tests/golden/trace_smoke.jsonl "$scratch/trace.jsonl"
diff -u tests/golden/metrics_smoke.json "$scratch/metrics.json"

echo "==> flowtune-analyze (workspace invariants, JSON report vs baseline)"
# The machine-readable report gates the tree against the committed
# baseline: only findings absent from ANALYZE_baseline.json fail the
# run, so a deliberately accepted finding never blocks CI twice.
cargo run -q --offline -p flowtune-analyze -- \
  --format json --baseline ANALYZE_baseline.json > "$scratch/analyze.json"

echo "All checks passed."
