#!/usr/bin/env bash
# Tier-1 verification gate. Run from the repository root:
#
#   ./ci/check.sh
#
# Every step runs with --offline: the workspace has a strict
# zero-external-dependency policy (DESIGN §7), so a checkout with no
# network and no registry cache must build, test, and verify cleanly.
# A step that would touch the network is itself a policy violation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> fault determinism suite"
cargo test -q --offline -p flowtune-cloud --test fault_determinism
cargo test -q --offline -p flowtune-core --test fault_recovery

echo "==> exp_fault_matrix --smoke"
cargo run -q --offline --release -p flowtune-bench --bin exp_fault_matrix -- --smoke

echo "==> bench_sched --smoke (scheduler perf baseline harness)"
# Smoke-sized run into a temp dir: verifies the optimized-vs-reference
# harness end to end (exit nonzero on any benchmark error) without
# touching the committed full-run BENCH_sched.json baseline.
bench_tmp="$(mktemp -d)"
trap 'rm -rf "$bench_tmp"' EXIT
cargo run -q --offline --release -p flowtune-bench --bin bench_sched -- \
  --smoke --out "$bench_tmp/BENCH_sched.json"
test -s "$bench_tmp/BENCH_sched.json"

echo "==> observability golden trace (smoke)"
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp" "$bench_tmp"' EXIT
cargo run -q --offline --release -p flowtune-core --bin flowtune -- \
  --quanta 4 --seed 1 --concurrency 1 \
  --trace-out "$obs_tmp/trace.jsonl" --metrics-out "$obs_tmp/metrics.json" \
  > /dev/null
diff -u tests/golden/trace_smoke.jsonl "$obs_tmp/trace.jsonl"
diff -u tests/golden/metrics_smoke.json "$obs_tmp/metrics.json"

echo "==> flowtune-analyze (workspace invariants)"
cargo run -q --offline -p flowtune-analyze

echo "All checks passed."
