//! Integration tests for the §7 future-work extensions: adaptive
//! per-index fading and deferred batch builds, plus the α trade-off and
//! the Eq. 1 objective.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_core::{paired_objective, IndexPolicy, QaasService, RunReport, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn run(mutate: impl FnOnce(&mut ServiceConfig)) -> RunReport {
    let mut config = ServiceConfig::default();
    config.params.total_quanta = 60;
    config.params.seed = 21;
    config.policy = IndexPolicy::Gain { delete: true };
    config.workload = WorkloadKind::paper_phases();
    config.max_skyline = 4;
    mutate(&mut config);
    QaasService::new(config).run().expect("service run failed")
}

#[test]
fn adaptive_fading_service_runs_and_builds() {
    let r = run(|c| c.adaptive_fading = true);
    assert!(r.dataflows_finished > 0);
    assert!(r.builds_completed > 0);
}

#[test]
fn deferred_builds_never_lose_throughput() {
    let base = run(|_| {});
    let deferred = run(|c| c.deferred_builds = true);
    // Under paper defaults builds fit slots, so deferral must be a
    // no-regression knob (build counts may shuffle slightly because a
    // batch-built partition no longer needs a slot build later).
    assert!(deferred.dataflows_finished >= base.dataflows_finished.saturating_sub(1));
    assert!(
        (deferred.builds_completed as f64) >= 0.8 * base.builds_completed as f64,
        "deferred {} vs base {}",
        deferred.builds_completed,
        base.builds_completed
    );
}

#[test]
fn alpha_extremes_change_build_appetite() {
    // α = 1 ignores money entirely: at least as many builds as α = 0,
    // which gates everything on storage cost.
    let money_heavy = run(|c| c.params.tuner.alpha = 0.0);
    let time_heavy = run(|c| c.params.tuner.alpha = 1.0);
    // Directional with slack: on this workload storage is cheap relative
    // to gains, so the extremes differ by a margin, not an order of
    // magnitude.
    assert!(
        time_heavy.builds_completed as f64 >= 0.9 * money_heavy.builds_completed as f64,
        "time-heavy {} < money-heavy {}",
        time_heavy.builds_completed,
        money_heavy.builds_completed
    );
}

#[test]
fn objective_is_positive_for_the_tuned_run() {
    // Longer horizon: the index set needs a warm-up period to pay off.
    let baseline = run(|c| {
        c.policy = IndexPolicy::NoIndex;
        c.params.total_quanta = 150;
    });
    let tuned = run(|c| c.params.total_quanta = 150);
    let obj = paired_objective(
        &baseline,
        &tuned,
        0.5,
        flowtune_common::Money::from_dollars(0.1),
    );
    assert!(obj > 0.0, "Eq. 1 objective should be positive, got {obj}");
}

#[test]
fn concurrency_one_degenerates_to_sequential_service() {
    let seq = run(|c| c.concurrency = 1);
    let par = run(|c| c.concurrency = 4);
    assert!(seq.dataflows_finished > 0);
    // More lanes never process fewer dataflows.
    assert!(par.dataflows_finished >= seq.dataflows_finished);
}
