//! Qualitative reproduction checks: small-scale versions of the
//! paper's headline findings, asserted as tests so regressions in any
//! crate surface immediately.

use flowtune_common::{ExperimentParams, SimRng};
use flowtune_core::experiment::ExperimentSetup;
use flowtune_dataflow::App;
use flowtune_index::IndexCostModel;
use flowtune_interleave::{graham_greedy, merged_upper_bound, solve_knapsack};
use flowtune_query::measure_table6;
use flowtune_sched::{OnlineLoadBalanceScheduler, SkylineScheduler};
use flowtune_storage::lineitem::SF2_ROWS;
use flowtune_storage::LineitemGenerator;

/// Table 5's ordering: index size percentage by column.
#[test]
fn table5_index_size_ordering_reproduces() {
    let schema = LineitemGenerator::schema();
    let table_rec = schema.avg_row_bytes();
    let pct = |column: &str| {
        let key = schema.column(column).unwrap().ty.avg_value_bytes();
        IndexCostModel::new(key + 8.0, table_rec).size_bytes(SF2_ROWS) as f64
            / (SF2_ROWS as f64 * table_rec)
            * 100.0
    };
    let comment = pct("comment");
    let shipinstruct = pct("shipinstruct");
    let commitdate = pct("commitdate");
    let orderkey = pct("orderkey");
    // Paper: 30.16 > 17.78 > 16.13 > 10.49.
    assert!(comment > shipinstruct && shipinstruct > commitdate && commitdate > orderkey);
    assert!((25.0..35.0).contains(&comment), "comment {comment:.1}%");
    assert!((8.0..13.0).contains(&orderkey), "orderkey {orderkey:.1}%");
}

/// Table 6's selectivity ordering: lookup > small range > large range,
/// and every indexed path wins. (The paper's DBMS also has order-by <
/// large range; in a purely in-memory engine the scan side of the large
/// range is cheap relative to result materialisation, which compresses
/// that particular gap — see EXPERIMENTS.md.)
#[test]
fn table6_speedup_ordering_reproduces() {
    let rows = measure_table6(400_000, 66, 3);
    let s = |name: &str| rows.iter().find(|r| r.query == name).unwrap().speedup();
    let order_by = s("Order by");
    let large = s("Select range (large)");
    let small = s("Select range (small)");
    let lookup = s("Lookup");
    assert!(order_by > 1.0, "order-by {order_by:.1}");
    assert!(large > 1.0, "large {large:.1}");
    assert!(small > large, "small {small:.1} <= large {large:.1}");
    assert!(lookup > small, "lookup {lookup:.1} <= small {small:.1}");
}

/// Fig. 7's data-intensive finding: load balancing ignores placement,
/// so as data grows the online scheduler's money cost blows up and its
/// time advantage inverts.
#[test]
fn fig7_offline_scheduler_wins_on_data_intensive_dataflows() {
    let setup = ExperimentSetup::new(ExperimentParams::default());
    let quantum = setup.params.cloud.quantum;
    let offline = SkylineScheduler::new(setup.scheduler_config(8));
    let online = OnlineLoadBalanceScheduler::default();
    let mut rng = SimRng::seed_from_u64(77);
    let base = App::Cybershake.generate(100, &[], &mut rng);
    let scaled = |factor: u64| {
        let ops = base.ops().to_vec();
        let edges = base
            .edges()
            .iter()
            .map(|e| flowtune_dataflow::Edge {
                from: e.from,
                to: e.to,
                bytes: e.bytes * factor,
            })
            .collect();
        flowtune_dataflow::Dag::new(ops, edges).unwrap()
    };
    // Online always pays more (leases per parallelism, blind to data).
    let mut money_gap = Vec::new();
    for factor in [1u64, 20, 100] {
        let dag = scaled(factor);
        let off = offline.schedule(&dag).remove(0);
        let on = online.schedule(&dag);
        assert!(
            on.leased_quanta(quantum) > off.leased_quanta(quantum),
            "x{factor}: online money must exceed offline"
        );
        money_gap.push(on.leased_quanta(quantum) as f64 / off.leased_quanta(quantum) as f64);
    }
    // The money gap widens as the dataflow gets more data-intensive.
    assert!(
        money_gap[2] > money_gap[0],
        "money gap should grow with data intensity: {money_gap:?}"
    );
    // At extreme data intensity the online scheduler is also slower.
    let dag = scaled(100);
    let off = offline.schedule(&dag).remove(0);
    let on = online.schedule(&dag);
    assert!(
        on.makespan() >= off.makespan(),
        "x100: online {} still beat offline {}",
        on.makespan(),
        off.makespan()
    );
}

/// Fig. 11's finding: LP-quality packing is near the merged upper
/// bound and never below Graham.
#[test]
fn fig11_lp_packing_dominates_graham_and_nears_upper_bound() {
    // The Fig. 10 instance: 8 idle segments of 0.10-0.55 quanta, 24
    // build operators of 0.02-0.20 quanta, gain = execution time.
    let slots: Vec<u64> = [0.55, 0.48, 0.40, 0.33, 0.28, 0.22, 0.15, 0.10]
        .iter()
        .map(|q| (q * 60_000.0) as u64)
        .collect();
    let ops_quanta = [
        0.02, 0.03, 0.03, 0.04, 0.05, 0.05, 0.06, 0.07, 0.08, 0.08, 0.09, 0.10, 0.10, 0.11, 0.12,
        0.13, 0.14, 0.15, 0.16, 0.17, 0.18, 0.19, 0.19, 0.20,
    ];
    let sizes: Vec<u64> = ops_quanta
        .iter()
        .map(|q: &f64| (q * 60_000.0) as u64)
        .collect();
    let values: Vec<f64> = sizes.iter().map(|&s| s as f64 / 60_000.0).collect();
    let (_, graham) = graham_greedy(&slots, &sizes, &values);
    // LP-style: knapsack per slot, largest first.
    let mut order: Vec<usize> = (0..slots.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(slots[i]));
    let mut available = vec![true; sizes.len()];
    let mut lp = 0.0;
    for &s in &order {
        let idx: Vec<usize> = (0..sizes.len()).filter(|&i| available[i]).collect();
        let sz: Vec<u64> = idx.iter().map(|&i| sizes[i]).collect();
        let vl: Vec<f64> = idx.iter().map(|&i| values[i]).collect();
        let sol = solve_knapsack(slots[s], &sz, &vl);
        for &c in &sol.chosen {
            available[idx[c]] = false;
        }
        lp += sol.value;
    }
    let upper = merged_upper_bound(&slots, &sizes, &values);
    assert!(lp >= graham - 1e-9, "LP {lp} < Graham {graham}");
    assert!(lp <= upper + 1e-9);
    assert!(lp >= 0.90 * upper, "LP {lp} far from bound {upper}");
}

/// Fig. 8's finding at unit scale: on the same dataflow, LP interleaving
/// places at least as many build operators as online interleaving.
#[test]
fn fig8_lp_places_at_least_as_many_builds_as_online() {
    use flowtune_common::{BuildOpId, IndexId, SimDuration};
    use flowtune_interleave::{BuildOp, LpInterleaver, OnlineInterleaver};
    use flowtune_sched::BuildRef;

    let setup = ExperimentSetup::new(ExperimentParams::default());
    let scheduler = SkylineScheduler::new(setup.scheduler_config(8));
    let mut rng = SimRng::seed_from_u64(88);
    let dag = App::Montage.generate(100, &[], &mut rng);
    let pending: Vec<BuildOp> = (0..60u32)
        .map(|i| BuildOp {
            id: BuildOpId(i),
            build: BuildRef {
                index: IndexId(i / 4),
                part: i % 4,
            },
            duration: SimDuration::from_secs(5 + (i as u64 * 13) % 26),
            gain: 1.0 + (i as f64 * 0.29) % 4.0,
        })
        .collect();
    let mut lp_skyline = scheduler.schedule(&dag);
    let lp_best = LpInterleaver::new(setup.params.cloud.quantum)
        .interleave_skyline(&mut lp_skyline, &pending)
        .iter()
        .map(Vec::len)
        .max()
        .unwrap();
    let online_best = OnlineInterleaver::new(scheduler)
        .schedule(&dag, &pending)
        .iter()
        .map(|s| s.build_assignments().count())
        .max()
        .unwrap();
    assert!(
        lp_best >= online_best,
        "LP {lp_best} < online {online_best}"
    );
    assert!(lp_best > 0);
}
