//! Reproducibility: every layer of the system is deterministic for a
//! fixed seed — a property the experiment harness depends on.

use flowtune_common::SimRng;
use flowtune_core::{IndexPolicy, QaasService, ServiceConfig};
use flowtune_dataflow::{App, ArrivalClient, FileDatabase, WorkloadKind};
use flowtune_sched::SkylineScheduler;

#[test]
fn full_service_runs_are_bit_identical_per_seed() {
    let run = |seed: u64| {
        let mut config = ServiceConfig::default();
        config.params.total_quanta = 25;
        config.params.seed = seed;
        config.policy = IndexPolicy::Gain { delete: true };
        config.max_skyline = 4;
        QaasService::new(config).run().expect("service run failed")
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.dataflows_issued, b.dataflows_issued);
    assert_eq!(a.dataflows_finished, b.dataflows_finished);
    assert_eq!(a.compute_cost, b.compute_cost);
    assert_eq!(a.index_storage_cost, b.index_storage_cost);
    assert_eq!(a.builds_completed, b.builds_completed);
    assert_eq!(a.builds_killed, b.builds_killed);
    assert_eq!(a.timeline.len(), b.timeline.len());
    for (x, y) in a.timeline.iter().zip(&b.timeline) {
        assert_eq!(x, y);
    }
    // A different seed genuinely changes the run.
    let c = run(43);
    assert!(
        a.dataflows_issued != c.dataflows_issued || a.compute_cost != c.compute_cost,
        "different seeds produced identical runs"
    );
}

#[test]
fn full_service_reports_are_byte_identical_per_seed() {
    // Stronger than field equality: the rendered report — every float,
    // every per-dataflow record, every timeline sample — must agree to
    // the byte. This is the regression net for iteration-order bugs
    // (hash maps on the output path) that field spot checks can miss.
    let run = |seed: u64| {
        let mut config = ServiceConfig::default();
        config.params.total_quanta = 25;
        config.params.seed = seed;
        config.policy = IndexPolicy::Gain { delete: true };
        config.max_skyline = 4;
        format!(
            "{:?}",
            QaasService::new(config).run().expect("service run failed")
        )
    };
    let (a, b) = (run(42), run(42));
    assert!(a == b, "identical seeds rendered different reports");
}

#[test]
fn schedulers_are_deterministic() {
    let dag = App::Ligo.generate(100, &[], &mut SimRng::seed_from_u64(5));
    let scheduler = SkylineScheduler::default();
    let a = scheduler.schedule(&dag);
    let b = scheduler.schedule(&dag);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.assignments(), y.assignments());
    }
}

#[test]
fn workload_generation_is_deterministic() {
    let mk = |seed| {
        let mut rng = SimRng::seed_from_u64(seed);
        let db = FileDatabase::generate(&mut rng);
        let mut client = ArrivalClient::new(
            WorkloadKind::paper_phases(),
            flowtune_common::SimDuration::from_secs(60),
            rng,
        );
        let arrivals: Vec<_> = (0..50).map(|_| client.next_arrival()).collect();
        (db.total_bytes(), db.total_partitions(), arrivals)
    };
    assert_eq!(mk(9), mk(9));
    assert_ne!(mk(9).2, mk(10).2);
}
