//! Integration tests of the planning pipeline across crates:
//! dataflow generation → skyline scheduling → idle-slot analysis →
//! interleaving → simulation, checking the paper's core invariant at
//! every step: interleaving never costs the dataflow time or money.

use std::collections::BTreeMap;

use flowtune_cloud::{IndexAvailability, Simulator};
use flowtune_common::{
    BuildOpId, CloudConfig, ExperimentParams, IndexId, Money, SimDuration, SimRng,
};
use flowtune_core::experiment::ExperimentSetup;
use flowtune_dataflow::App;
use flowtune_interleave::{BuildOp, LpInterleaver, OnlineInterleaver};
use flowtune_sched::{idle_slots, total_fragmentation, BuildRef, SkylineScheduler};

fn pending_ops(n: u32) -> Vec<BuildOp> {
    (0..n)
        .map(|i| BuildOp {
            id: BuildOpId(i),
            build: BuildRef {
                index: IndexId(i / 3),
                part: i % 3,
            },
            duration: SimDuration::from_secs(3 + (i as u64 * 7) % 20),
            gain: 0.5 + (i as f64 * 0.31) % 3.0,
        })
        .collect()
}

#[test]
fn lp_interleaving_preserves_time_and_money_for_every_app() {
    let setup = ExperimentSetup::new(ExperimentParams::default());
    let quantum = setup.params.cloud.quantum;
    let vm_price = setup.params.cloud.vm_price_per_quantum;
    let scheduler = SkylineScheduler::new(setup.scheduler_config(6));
    let mut rng = SimRng::seed_from_u64(11);
    for app in App::ALL {
        let dag = app.generate(100, &[], &mut rng);
        for mut schedule in scheduler.schedule(&dag) {
            let time = schedule.makespan();
            let money = schedule.money(quantum, vm_price);
            LpInterleaver::new(quantum).interleave(&mut schedule, &pending_ops(60));
            assert_eq!(schedule.makespan(), time, "{}", app.name());
            assert_eq!(schedule.money(quantum, vm_price), money, "{}", app.name());
            schedule.validate(&dag).unwrap();
        }
    }
}

#[test]
fn interleaved_builds_fit_inside_former_idle_slots() {
    let setup = ExperimentSetup::new(ExperimentParams::default());
    let quantum = setup.params.cloud.quantum;
    let scheduler = SkylineScheduler::new(setup.scheduler_config(6));
    let mut rng = SimRng::seed_from_u64(12);
    let dag = App::Montage.generate(100, &[], &mut rng);
    let mut schedule = scheduler.schedule(&dag).remove(0);
    let slots_before = idle_slots(&schedule, quantum);
    LpInterleaver::new(quantum).interleave(&mut schedule, &pending_ops(80));
    for b in schedule.build_assignments() {
        let inside = slots_before
            .iter()
            .any(|s| s.container == b.container && b.start >= s.start && b.end <= s.end);
        assert!(inside, "build {} escaped the idle slots", b.op);
    }
}

#[test]
fn simulation_of_interleaved_schedule_matches_plan_without_errors() {
    // With exact estimates, the simulated dataflow must be at least as
    // fast as planned (it repacks greedily) and cost no more.
    let setup = ExperimentSetup::new(ExperimentParams::default());
    let cloud: CloudConfig = setup.params.cloud.clone();
    let scheduler = SkylineScheduler::new(setup.scheduler_config(6));
    let mut rng = SimRng::seed_from_u64(13);
    for app in App::ALL {
        let dag = app.generate(100, &[], &mut rng);
        let mut schedule = scheduler.schedule(&dag).remove(0);
        LpInterleaver::new(cloud.quantum).interleave(&mut schedule, &pending_ops(40));
        let sim = Simulator::new(cloud.clone(), &setup.filedb);
        let exec = sim
            .execute(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .expect("simulation failed");
        assert!(
            exec.makespan <= schedule.makespan(),
            "{}: simulated {} > planned {}",
            app.name(),
            exec.makespan,
            schedule.makespan()
        );
        let planned_money = schedule.money(cloud.quantum, cloud.vm_price_per_quantum);
        assert!(
            exec.compute_cost <= planned_money,
            "{}: simulated {} > planned {}",
            app.name(),
            exec.compute_cost,
            planned_money
        );
    }
}

#[test]
fn online_interleaver_also_preserves_the_pareto_front() {
    let setup = ExperimentSetup::new(ExperimentParams::default());
    let quantum = setup.params.cloud.quantum;
    let scheduler = SkylineScheduler::new(setup.scheduler_config(6));
    let mut rng = SimRng::seed_from_u64(14);
    let dag = App::Ligo.generate(100, &[], &mut rng);
    let plain = scheduler.schedule(&dag);
    let interleaved = OnlineInterleaver::new(scheduler.clone()).schedule(&dag, &pending_ops(50));
    for p in &plain {
        let covered = interleaved.iter().any(|s| {
            s.makespan() <= p.makespan() && s.leased_quanta(quantum) <= p.leased_quanta(quantum)
        });
        assert!(covered, "online interleaving regressed the front");
    }
}

#[test]
fn fragmentation_shrinks_but_never_below_zero() {
    let setup = ExperimentSetup::new(ExperimentParams::default());
    let quantum = setup.params.cloud.quantum;
    let scheduler = SkylineScheduler::new(setup.scheduler_config(6));
    let mut rng = SimRng::seed_from_u64(15);
    let dag = App::Cybershake.generate(100, &[], &mut rng);
    let mut schedule = scheduler.schedule(&dag).remove(0);
    let before = total_fragmentation(&schedule, quantum);
    LpInterleaver::new(quantum).interleave(&mut schedule, &pending_ops(120));
    let after = total_fragmentation(&schedule, quantum);
    assert!(after <= before);
    assert!(after >= SimDuration::ZERO);
    assert!(schedule.money(quantum, Money::from_dollars(0.1)) > Money::ZERO);
}
