//! End-to-end integration tests: the full QaaS service across all
//! crates (workload generation → tuning → scheduling → interleaving →
//! simulation → accounting).

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_common::Money;
use flowtune_core::{IndexPolicy, QaasService, RunReport, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn run(policy: IndexPolicy, workload: WorkloadKind, quanta: u64, seed: u64) -> RunReport {
    let mut config = ServiceConfig::default();
    config.params.total_quanta = quanta;
    config.params.seed = seed;
    config.policy = policy;
    config.workload = workload;
    config.max_skyline = 4;
    QaasService::new(config).run().expect("service run failed")
}

#[test]
fn all_policies_complete_a_random_workload() {
    for policy in [
        IndexPolicy::NoIndex,
        IndexPolicy::Random,
        IndexPolicy::Gain { delete: false },
        IndexPolicy::Gain { delete: true },
    ] {
        let r = run(policy, WorkloadKind::Random, 30, 1);
        assert!(r.dataflows_issued > 0, "{}: nothing issued", policy.label());
        assert!(
            r.dataflows_finished > 0,
            "{}: nothing finished",
            policy.label()
        );
        assert!(
            r.dataflow_ops >= r.dataflows_finished * 90,
            "{}",
            policy.label()
        );
        assert!(r.compute_cost > Money::ZERO, "{}", policy.label());
        assert_eq!(r.timeline.len(), r.dataflows_issued);
    }
}

#[test]
fn gain_policy_beats_no_index_on_cost_and_throughput() {
    // Longer phased run so indexes have time to pay off.
    let base = run(IndexPolicy::NoIndex, WorkloadKind::paper_phases(), 120, 2);
    let gain = run(
        IndexPolicy::Gain { delete: true },
        WorkloadKind::paper_phases(),
        120,
        2,
    );
    assert!(
        gain.dataflows_finished >= base.dataflows_finished,
        "gain {} < base {}",
        gain.dataflows_finished,
        base.dataflows_finished
    );
    assert!(
        gain.avg_makespan_quanta() <= base.avg_makespan_quanta() * 1.05,
        "gain {} vs base {} quanta",
        gain.avg_makespan_quanta(),
        base.avg_makespan_quanta()
    );
    assert!(gain.builds_completed > 0);
}

#[test]
fn no_index_policy_attempts_no_builds() {
    let r = run(IndexPolicy::NoIndex, WorkloadKind::Random, 30, 3);
    assert_eq!(r.builds_completed, 0);
    assert_eq!(r.builds_killed, 0);
    assert_eq!(r.indexes_deleted, 0);
    assert_eq!(r.index_storage_cost, Money::ZERO);
}

#[test]
fn killed_fraction_stays_small_for_gain_policy() {
    // Table 7: the LP packing keeps premature kills under a few percent
    // of all operators.
    let r = run(
        IndexPolicy::Gain { delete: true },
        WorkloadKind::paper_phases(),
        90,
        4,
    );
    assert!(
        r.killed_percentage() < 15.0,
        "killed {}% of ops",
        r.killed_percentage()
    );
}

#[test]
fn timeline_cost_is_monotone_and_issue_order_respected() {
    let r = run(
        IndexPolicy::Gain { delete: true },
        WorkloadKind::Random,
        40,
        5,
    );
    // Entries are in processing order; concurrent lanes may finish out
    // of order, but accrued storage cost never decreases and dataflows
    // are issued in arrival order.
    for w in r.timeline.windows(2) {
        assert!(
            w[0].storage_cost <= w[1].storage_cost,
            "storage cost regressed"
        );
    }
    for w in r.per_dataflow.windows(2) {
        assert!(
            w[0].issued_quanta <= w[1].issued_quanta + flowtune_common::Quanta::new(1e-9),
            "issue order violated"
        );
    }
}

#[test]
fn deletions_only_happen_with_delete_enabled() {
    let keep = run(
        IndexPolicy::Gain { delete: false },
        WorkloadKind::paper_phases(),
        90,
        6,
    );
    assert_eq!(keep.indexes_deleted, 0);
    // With deletion enabled under a *phased* workload, stale indexes get
    // dropped eventually (phases make old indexes useless).
    let del = run(
        IndexPolicy::Gain { delete: true },
        WorkloadKind::paper_phases(),
        240,
        6,
    );
    assert!(
        del.indexes_deleted > 0,
        "no index ever deleted under phases"
    );
}

#[test]
fn estimation_errors_do_not_break_the_service() {
    let mut config = ServiceConfig::default();
    config.params.total_quanta = 25;
    config.params.seed = 7;
    config.estimation_error = (0.3, 0.3);
    config.max_skyline = 4;
    let r = QaasService::new(config).run().expect("service run failed");
    assert!(r.dataflows_finished > 0);
}
