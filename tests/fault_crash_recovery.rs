//! Crash-consistency regression suite for the paged index backend.
//!
//! Exercises the two page-level fault kinds (crash-during-build and
//! torn-page-write) end to end through the service: faults corrupt
//! persistent pages, the post-commit verification scan detects them by
//! checksum/epoch, detected partitions are invalidated and rebuilt
//! under the throttle, and a never-probed guarantee holds because
//! invalidation happens before any query can plan against the
//! partition. The headline counters are pinned against a committed
//! golden so any behavioural drift in the detect → invalidate →
//! rebuild pipeline shows up as a reviewable text diff.
//!
//! Regenerate the golden by running the ignored `regen` helper below
//! and copying its output:
//!
//! ```text
//! cargo test -p flowtune-core --test fault_crash_recovery -- --ignored --nocapture regen_golden
//! ```

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::fmt::Write as _;

use flowtune_cloud::FaultConfig;
use flowtune_common::{FileId, IndexId, Money, SimDuration, SimTime};
use flowtune_core::{
    IndexPolicy, QaasService, RecoveryConfig, RecoveryPolicyKind, RunReport, ServiceConfig,
};
use flowtune_dataflow::WorkloadKind;
use flowtune_index::{IndexCatalog, IndexCostModel, IndexKind, IndexPageStore, IndexSpec};
use flowtune_query::{
    build_composite, composite_select, ColPredicate, IndexDef, MultiTable, Predicate, QuerySpec,
};
use flowtune_storage::{ObjectKey, StorageService};

fn config(seed: u64, quanta: u64) -> ServiceConfig {
    // Mirror the `flowtune` CLI defaults so these runs line up with
    // `flowtune --quanta N --seed S --crash-share X --torn-share Y`.
    let mut c = ServiceConfig {
        workload: WorkloadKind::paper_phases(),
        policy: IndexPolicy::Gain { delete: true },
        ..Default::default()
    };
    c.params.total_quanta = quanta;
    c.params.seed = seed;
    c
}

/// Fault config where *only* the two page-level kinds can fire, so the
/// golden isolates the crash/torn recovery path from revocations,
/// stragglers, and logical build failures.
fn page_faults_only(rate: f64, fault_seed: u64) -> FaultConfig {
    let mut f = FaultConfig::with_rate(rate, fault_seed);
    f.revocation_share = 0.0;
    f.storage_share = 0.0;
    f.straggler_share = 0.0;
    f.build_failure_share = 0.0;
    f.crash_build_share = 0.5;
    f.torn_write_share = 0.5;
    f
}

fn run(c: ServiceConfig) -> RunReport {
    QaasService::new(c).run().expect("service run failed")
}

fn crash_run(rate: f64) -> RunReport {
    let mut c = config(7, 40);
    c.faults = page_faults_only(rate, 0xFA_0175);
    c.recovery = RecoveryConfig::with_policy(RecoveryPolicyKind::Retry);
    run(c)
}

fn render(r: &RunReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "fault_crash_recovery: quanta 40, seed 7, fault seed 0xFA0175, rate 0.40"
    );
    let _ = writeln!(
        s,
        "faults: crash_build_share 0.50, torn_write_share 0.50, all other shares 0; policy retry"
    );
    let _ = writeln!(s, "dataflows issued        {}", r.dataflows_issued);
    let _ = writeln!(s, "dataflows finished      {}", r.dataflows_finished);
    let _ = writeln!(s, "builds completed        {}", r.builds_completed);
    let _ = writeln!(s, "builds crashed          {}", r.builds_crashed);
    let _ = writeln!(s, "verify pages scanned    {}", r.verify_pages_scanned);
    let _ = writeln!(s, "bad pages detected      {}", r.bad_pages_detected);
    let _ = writeln!(s, "partitions invalidated  {}", r.partitions_invalidated);
    let _ = writeln!(s, "rebuilds completed      {}", r.rebuilds_completed);
    let _ = writeln!(
        s,
        "wasted compute quanta   {:.3}",
        r.wasted_compute_quanta.get()
    );
    let _ = writeln!(s, "wasted cost             {}", r.wasted_cost);
    s
}

#[test]
fn detection_invalidation_and_rebuild_match_the_golden() {
    let r = crash_run(0.4);

    // The detect → invalidate → rebuild pipeline must actually engage:
    // crashes and torn writes leave bad persistent pages, the scan finds
    // them, and the throttle lets rebuilds through within the horizon.
    assert!(r.builds_crashed > 0, "no build ever crashed at rate 0.4");
    assert!(r.verify_pages_scanned > 0, "verification scan never ran");
    assert!(r.bad_pages_detected > 0, "no torn/crashed page detected");
    assert!(
        r.partitions_invalidated > 0,
        "bad pages were detected but nothing was invalidated"
    );
    assert!(
        r.rebuilds_completed > 0,
        "invalidated partitions were never rebuilt"
    );
    // Every bad page lives inside a scanned partition image.
    assert!(r.bad_pages_detected <= r.verify_pages_scanned);
    // Crashed/invalidated builds are accounted as waste, and waste stays
    // a subset of all compute spending.
    assert!(r.wasted_compute_quanta.get() > 0.0);
    assert!(r.wasted_cost <= r.compute_cost);

    assert_eq!(
        render(&r),
        include_str!("golden/fault_crash_recovery.txt"),
        "crash-recovery counters drifted from tests/golden/fault_crash_recovery.txt \
         (regenerate via the regen_golden helper in this file if the change is intended)"
    );
}

#[test]
#[ignore = "golden regeneration helper, not a check"]
fn regen_golden() {
    print!("{}", render(&crash_run(0.4)));
}

#[test]
fn same_seed_pair_is_deterministic_under_page_faults() {
    let a = crash_run(0.4);
    let b = crash_run(0.4);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn rate_zero_with_page_shares_set_matches_the_fault_free_run() {
    // Shares alone must never perturb a run: probability is rate x
    // share, so rate 0 with crash/torn shares configured has to be
    // byte-identical to the default fault-free service.
    let baseline = run(config(7, 40));
    let gated = crash_run(0.0);
    assert_eq!(format!("{baseline:?}"), format!("{gated:?}"));
    assert_eq!(gated.builds_crashed, 0);
    assert_eq!(gated.bad_pages_detected, 0);
    assert_eq!(gated.partitions_invalidated, 0);
    assert_eq!(gated.rebuilds_completed, 0);
}

#[test]
fn unmark_built_double_invalidate_is_idempotent_against_storage() {
    // Regression for the recovery path: a partition that fails
    // verification twice in a row (or races a delete) must not panic
    // and must not double-delete storage. The catalog's `unmark_built`
    // return value is the gate — only the first invalidation may
    // release the billed object and the page image.
    let mut cat = IndexCatalog::new();
    let id = cat.add(IndexSpec::single_column(
        IndexId(0),
        FileId(0),
        "orderkey",
        IndexKind::BTree,
        IndexCostModel::new(12.0, 117.0),
        vec![100_000; 2],
    ));
    let mut storage = StorageService::new(Money::from_dollars(1e-4), SimDuration::from_secs(60));
    let mut pages = IndexPageStore::new();

    // Build partition 1: catalog state, billed object, page image.
    let bytes = cat.spec(id).partition_bytes(1);
    let now = SimTime::from_secs(600);
    cat.mark_built(id, 1, now, 0);
    storage.put(ObjectKey::IndexPart(id, 1), bytes, now);
    pages.write_partition(id, 1, bytes);
    assert!(cat.is_partition_built(id, 1));
    assert!(pages.has_partition(id, 1));

    // First invalidation wins the gate and releases both stores.
    assert!(cat.unmark_built(id, 1));
    assert_eq!(
        storage.delete(&ObjectKey::IndexPart(id, 1), now),
        Some(bytes)
    );
    pages.delete_partition(id, 1);
    assert!(!cat.is_partition_built(id, 1));
    assert!(!pages.has_partition(id, 1));

    // Second invalidation loses the gate: no panic, no double delete.
    assert!(
        !cat.unmark_built(id, 1),
        "double invalidate must be a no-op"
    );
    assert_eq!(storage.delete(&ObjectKey::IndexPart(id, 1), now), None);
    pages.delete_partition(id, 1);
    assert_eq!(cat.built_bytes(id), 0);
    assert_eq!(storage.object_count(), 0);

    // The partition is rebuildable afterwards.
    cat.mark_built(id, 1, SimTime::from_secs(1200), 1);
    storage.put(ObjectKey::IndexPart(id, 1), bytes, SimTime::from_secs(1200));
    pages.write_partition(id, 1, bytes);
    assert!(cat.is_partition_built(id, 1));
    assert_eq!(storage.object_count(), 1);
    assert!(pages.has_partition(id, 1));
}

#[test]
fn composite_partition_recovers_like_any_other() {
    // A composite index partition is, at the page layer, just another
    // partition image: torn writes are detected by the same
    // verification scan, invalidated through the same `unmark_built`
    // gate, and the rebuilt image verifies clean.
    let mut cat = IndexCatalog::new();
    let id = cat.add(IndexSpec {
        id: IndexId(0),
        file: FileId(0),
        columns: vec!["quantity".into(), "shipdate".into()],
        kind: IndexKind::BTree,
        // Composite records carry both key columns: wider rec_bytes,
        // same model shape.
        model: IndexCostModel::new(24.0, 117.0),
        partition_rows: vec![100_000; 2],
    });
    assert!(cat.spec(id).is_composite());
    assert_eq!(cat.spec(id).display_columns(), "quantity+shipdate");

    let mut storage = StorageService::new(Money::from_dollars(1e-4), SimDuration::from_secs(60));
    let mut pages = IndexPageStore::new();
    let bytes = cat.spec(id).partition_bytes(0);
    let now = SimTime::from_secs(60);
    cat.mark_built(id, 0, now, 0);
    storage.put(ObjectKey::IndexPart(id, 0), bytes, now);

    // The build lands torn; the verification scan must catch it.
    pages.write_partition_torn(id, 0, bytes);
    let verdict = pages.verify_partition(id, 0).expect("image exists");
    assert!(!verdict.is_clean(), "torn composite image must not verify");

    // Invalidate exactly as the service's recovery path does.
    assert!(cat.unmark_built(id, 0));
    assert_eq!(
        storage.delete(&ObjectKey::IndexPart(id, 0), now),
        Some(bytes)
    );
    pages.delete_partition(id, 0);
    assert!(!cat.is_partition_built(id, 0));

    // Rebuild: clean image, clean verdict, catalog current again.
    let later = SimTime::from_secs(120);
    cat.mark_built(id, 0, later, 0);
    storage.put(ObjectKey::IndexPart(id, 0), bytes, later);
    pages.write_partition(id, 0, bytes);
    assert!(pages
        .verify_partition(id, 0)
        .expect("image exists")
        .is_clean());
    assert_eq!(cat.built_bytes(id), bytes);

    // And the rebuilt composite actually serves prefix probes: the
    // in-memory tree equivalent of the partition answers a
    // multi-predicate query identically to a scan.
    let quantity: Vec<i64> = (0..4000).map(|i| i % 50).collect();
    let shipdate: Vec<i64> = (0..4000).map(|i| 8035 + (i * 37) % 2558).collect();
    let table = MultiTable::new(vec![
        ("quantity".to_owned(), quantity),
        ("shipdate".to_owned(), shipdate),
    ]);
    let def = IndexDef::btree(&["quantity", "shipdate"]);
    let tree = build_composite(&table, &def.columns, 64);
    tree.verify_pages().expect("rebuilt tree pages verify");
    let q = QuerySpec::new(
        vec![
            ColPredicate::new("quantity", Predicate::Equals(7)),
            ColPredicate::new("shipdate", Predicate::Between(8100, 8400)),
        ],
        vec![],
    );
    let via_index = composite_select(&tree, &def, &q, &table).expect("prefix serves the query");
    let mut got = via_index.rows.clone();
    got.sort_unstable();
    let want: Vec<u32> = (0..4000u32)
        .filter(|&r| {
            let i = i64::from(r);
            i % 50 == 7 && (8100..=8400).contains(&(8035 + (i * 37) % 2558))
        })
        .collect();
    assert_eq!(got, want);
}
