//! Golden determinism tests for the observability subsystem.
//!
//! Three contracts pinned here:
//!
//! 1. Two runs with the same seed produce byte-identical traces and
//!    metrics — the event log is as reproducible as the simulation.
//! 2. The smoke trace matches the committed golden files, so any
//!    schema or instrumentation change is a reviewed diff, never
//!    silent drift.
//! 3. Recording is an observer, not a participant: the `RunReport` of
//!    an instrumented run renders byte-identical to an uninstrumented
//!    one.
//!
//! The smoke configuration mirrors the CLI invocation in `ci/check.sh`:
//! `flowtune --quanta 4 --seed 1 --concurrency 1`.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_core::{QaasService, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn smoke_config() -> ServiceConfig {
    let mut config = ServiceConfig {
        workload: WorkloadKind::paper_phases(),
        concurrency: 1,
        ..Default::default()
    };
    config.params.total_quanta = 4;
    config.params.seed = 1;
    config
}

/// Run the smoke config with a recorder installed; returns the
/// Debug-rendered report, the JSONL trace, and the metrics summary.
fn recorded_run() -> (String, String, String) {
    flowtune_obs::install();
    let report = QaasService::new(smoke_config()).run();
    let rec = flowtune_obs::uninstall().expect("recorder was installed");
    let report = report.expect("service run failed");
    (format!("{report:?}"), rec.trace_jsonl(), rec.metrics_json())
}

const REGEN: &str = "regenerate with: cargo run -p flowtune-core --bin flowtune -- \
     --quanta 4 --seed 1 --concurrency 1 \
     --trace-out tests/golden/trace_smoke.jsonl \
     --metrics-out tests/golden/metrics_smoke.json";

#[test]
fn identical_seeds_produce_byte_identical_observability() {
    let (_, trace_a, metrics_a) = recorded_run();
    let (_, trace_b, metrics_b) = recorded_run();
    assert!(
        trace_a == trace_b,
        "identical seeds produced different traces"
    );
    assert!(
        metrics_a == metrics_b,
        "identical seeds produced different metrics"
    );
}

#[test]
fn trace_and_metrics_match_committed_goldens() {
    let (_, trace, metrics) = recorded_run();
    assert!(
        trace == include_str!("golden/trace_smoke.jsonl"),
        "trace drifted from tests/golden/trace_smoke.jsonl; {REGEN}"
    );
    assert!(
        metrics == include_str!("golden/metrics_smoke.json"),
        "metrics drifted from tests/golden/metrics_smoke.json; {REGEN}"
    );
}

#[test]
fn recording_does_not_perturb_the_run() {
    let (instrumented, _, _) = recorded_run();
    let report = QaasService::new(smoke_config())
        .run()
        .expect("service run failed");
    let bare = format!("{report:?}");
    assert!(
        instrumented == bare,
        "installing a recorder changed the simulation output"
    );
}
