//! Service-level fault/recovery regression suite.
//!
//! * Same `(workload seed, fault seed)` ⇒ byte-identical `RunReport`.
//! * Fault rate 0 reproduces the exact pre-fault golden numbers, so
//!   every EXPERIMENTS.md figure is unchanged by default.
//! * With faults on, Retry+GainPenalty completes strictly more
//!   dataflows at a lower cost-per-dataflow than NoRetry (the
//!   `exp_fault_matrix` acceptance criterion).

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_cloud::FaultConfig;
use flowtune_core::{
    IndexPolicy, QaasService, RecoveryConfig, RecoveryPolicyKind, RunReport, ServiceConfig,
};
use flowtune_dataflow::WorkloadKind;

fn config(seed: u64, quanta: u64) -> ServiceConfig {
    // Mirror the `flowtune` CLI defaults so the golden numbers pinned
    // below match `flowtune --quanta N --seed S` exactly.
    let mut c = ServiceConfig {
        workload: WorkloadKind::paper_phases(),
        policy: IndexPolicy::Gain { delete: true },
        ..Default::default()
    };
    c.params.total_quanta = quanta;
    c.params.seed = seed;
    c
}

fn faulted(
    mut c: ServiceConfig,
    rate: f64,
    fault_seed: u64,
    policy: RecoveryPolicyKind,
) -> RunReport {
    c.faults = FaultConfig::with_rate(rate, fault_seed);
    c.recovery = RecoveryConfig::with_policy(policy);
    QaasService::new(c).run().expect("service run failed")
}

#[test]
fn same_seed_pair_gives_identical_run_reports() {
    let a = faulted(config(7, 30), 0.3, 42, RecoveryPolicyKind::Retry);
    let b = faulted(config(7, 30), 0.3, 42, RecoveryPolicyKind::Retry);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(a.containers_revoked > 0, "rate 0.3 never revoked anything");
}

#[test]
fn rate_zero_reproduces_the_pre_fault_goldens() {
    // Pinned from the pre-fault-layer binary: `flowtune --quanta 40
    // --seed 7` and `flowtune --quanta 60 --seed 11`. Any drift here
    // means the fault layer perturbed default behaviour.
    let r = faulted(config(7, 40), 0.0, 0xDEAD, RecoveryPolicyKind::Retry);
    assert_eq!(r.dataflows_issued, 56);
    assert_eq!(r.dataflows_finished, 55);
    assert_eq!(r.builds_completed, 279);
    assert_eq!(r.builds_killed, 126);
    assert_eq!(r.indexes_deleted, 0);
    assert_eq!(format!("{}", r.compute_cost), "$128.800000");
    assert_eq!(format!("{}", r.index_storage_cost), "$7.900745");
    assert_eq!(format!("{:.3}", r.cost_per_dataflow()), "2.485");
    // The fault layer stayed silent.
    assert_eq!(r.dataflows_failed, 0);
    assert_eq!(r.ops_killed_by_fault, 0);
    assert_eq!(r.containers_revoked, 0);
    assert_eq!(r.storage_faults, 0);
    assert_eq!(r.straggler_ops, 0);
    assert_eq!(r.builds_failed, 0);
    assert_eq!(r.builds_killed_by_fault, 0);
    assert_eq!(r.retries, 0);
    assert!(r.recovery_latency_quanta.is_empty());

    let r = faulted(config(11, 60), 0.0, 1, RecoveryPolicyKind::NoRetry);
    assert_eq!(r.dataflows_issued, 49);
    assert_eq!(r.dataflows_finished, 49);
    assert_eq!(r.builds_completed, 563);
    assert_eq!(r.builds_killed, 299);
    assert_eq!(r.indexes_deleted, 2);
    assert_eq!(format!("{}", r.compute_cost), "$106.100000");
    assert_eq!(format!("{}", r.index_storage_cost), "$40.711366");
}

#[test]
fn retry_with_gain_penalty_beats_no_retry_under_faults() {
    let no_retry = faulted(config(7, 40), 0.3, 0xFA_0175, RecoveryPolicyKind::NoRetry);
    let penalised = faulted(
        config(7, 40),
        0.3,
        0xFA_0175,
        RecoveryPolicyKind::RetryGainPenalty,
    );
    assert!(
        no_retry.dataflows_failed > 0,
        "rate 0.3 never failed a dataflow under no-retry"
    );
    assert!(
        penalised.dataflows_finished > no_retry.dataflows_finished,
        "retry+gain-penalty finished {} <= no-retry {}",
        penalised.dataflows_finished,
        no_retry.dataflows_finished
    );
    assert!(
        penalised.cost_per_dataflow() < no_retry.cost_per_dataflow(),
        "retry+gain-penalty ${:.3}/df >= no-retry ${:.3}/df",
        penalised.cost_per_dataflow(),
        no_retry.cost_per_dataflow()
    );
    assert!(penalised.retries > 0);
    assert!(!penalised.recovery_latency_quanta.is_empty());
    assert!(penalised.recovery_latency_percentile(100.0) > 0.0);
}

#[test]
fn recovery_keeps_wasted_money_accounted() {
    let r = faulted(config(7, 30), 0.4, 9, RecoveryPolicyKind::Retry);
    if r.ops_killed_by_fault > 0 {
        assert!(r.wasted_cost > flowtune_common::Money::ZERO);
        assert!(r.wasted_compute_quanta.get() > 0.0);
    }
    // Wasted money is a subset of all compute spending.
    assert!(r.wasted_cost <= r.compute_cost);
}
